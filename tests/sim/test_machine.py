"""Machine-level simulator tests on hand-assembled per-core code.

A tiny assembler builds :class:`CompiledProgram` objects directly so these
tests pin down the machine's execution contract independently of the
compiler.
"""

import re

import pytest

from repro.arch import four_core, single_core, two_core
from repro.isa.machinecode import CompiledProgram, CoreBlock, CoreFunction
from repro.isa.operations import Imm, Opcode, Reg, RegFile, make_op
from repro.isa.program import Function, Program
from repro.sim import Deadlock, OutOfCycles, SimulatorError, VoltronMachine

R = lambda i: Reg(RegFile.GPR, i)
P = lambda i: Reg(RegFile.PR, i)
B = lambda i: Reg(RegFile.BTR, i)


def op(opcode, dests=None, srcs=None, **attrs):
    return make_op(opcode, dests, srcs, **attrs)


def assemble(n_cores, core_blocks, entry="entry", modes=None):
    """core_blocks: {core: [(label, slots, taken, fall), ...]}."""
    program = Program("hand")
    fn = Function("main")
    fn.add_block("entry")
    program.add_function(fn)
    compiled = CompiledProgram(program, n_cores)
    for core in range(n_cores):
        cf = CoreFunction("main", entry)
        for label, slots, taken, fall in core_blocks[core]:
            block = CoreBlock(label, slots=list(slots), taken=taken, fall=fall)
            if modes and label in modes:
                block.mode = modes[label]
            cf.add_block(block)
        compiled.add_function(core, cf)
    return compiled


def run(compiled, config, **kwargs):
    machine = VoltronMachine(compiled, config, **kwargs)
    machine.run()
    return machine


class TestSingleCore:
    def test_arithmetic_and_store(self):
        compiled = assemble(1, {
            0: [("entry", [
                op(Opcode.ADD, [R(0)], [Imm(2), Imm(3)]),
                op(Opcode.MUL, [R(1)], [R(0), Imm(10)]),
                op(Opcode.STORE, [], [Imm(64), Imm(0), R(1)]),
                op(Opcode.HALT),
            ], None, None)],
        })
        machine = run(compiled, single_core())
        assert machine.memory.load(64) == 50

    def test_nop_padding_costs_cycles(self):
        # Three pad slots stay within one I-cache line, so the cost is
        # exactly three issue cycles.
        body = [op(Opcode.HALT)]
        padded = [None] * 3 + [op(Opcode.HALT)]
        fast = run(assemble(1, {0: [("entry", body, None, None)]}), single_core())
        slow = run(assemble(1, {0: [("entry", padded, None, None)]}), single_core())
        assert slow.stats.cycles == fast.stats.cycles + 3

    def test_branch_taken_and_fallthrough(self):
        blocks = [
            ("entry", [
                op(Opcode.MOV, [R(0)], [Imm(0)]),
                op(Opcode.CMP_LT, [P(0)], [Imm(1), Imm(2)]),
                op(Opcode.PBR, [B(0)], [], target="yes"),
                op(Opcode.BR, [], [B(0), P(0)]),
            ], "yes", "no"),
            ("no", [
                op(Opcode.MOV, [R(0)], [Imm(111)]),
                op(Opcode.HALT),
            ], None, None),
            ("yes", [
                op(Opcode.STORE, [], [Imm(8), Imm(0), Imm(222)]),
                op(Opcode.HALT),
            ], None, None),
        ]
        machine = run(assemble(1, {0: blocks}), single_core())
        assert machine.memory.load(8) == 222

    def test_scoreboard_interlock_counts_latency_stall(self):
        # MUL has latency 3; a back-to-back consumer must stall.
        compiled = assemble(1, {
            0: [("entry", [
                op(Opcode.MUL, [R(0)], [Imm(3), Imm(4)]),
                op(Opcode.ADD, [R(1)], [R(0), Imm(1)]),
                op(Opcode.HALT),
            ], None, None)],
        })
        machine = run(compiled, single_core())
        assert machine.stats.cores[0].stalls["latency"] >= 2
        assert machine.cores[0].regs.read(R(1)) == 13

    def test_load_miss_blocks_and_counts_dstall(self):
        compiled = assemble(1, {
            0: [("entry", [
                op(Opcode.LOAD, [R(0)], [Imm(0), Imm(0)]),
                op(Opcode.HALT),
            ], None, None)],
        })
        machine = run(compiled, single_core())
        assert machine.stats.cores[0].stalls["dstall"] > 50  # memory latency
        assert machine.stats.cores[0].l1d_misses == 1

    def test_empty_block_falls_through(self):
        blocks = [
            ("entry", [], None, "mid"),
            ("mid", [], None, "end"),
            ("end", [op(Opcode.HALT)], None, None),
        ]
        machine = run(assemble(1, {0: blocks}), single_core())
        assert machine.stats.cycles >= 1

    def test_run_off_block_without_fall_raises(self):
        compiled = assemble(1, {
            0: [("entry", [op(Opcode.NOP)], None, None)],
        })
        with pytest.raises(SimulatorError):
            run(compiled, single_core())


class TestCoupledLockstep:
    def test_put_get_transfers_value(self):
        compiled = assemble(2, {
            0: [("entry", [
                op(Opcode.ADD, [R(0)], [Imm(20), Imm(22)]),
                op(Opcode.PUT, [], [R(0)], direction="east", align=901),
                op(Opcode.HALT, align=903),
            ], None, None)],
            1: [("entry", [
                None,
                op(Opcode.GET, [R(1)], [], direction="west", align=901),
                op(Opcode.HALT, align=903),
            ], None, None)],
        })
        machine = run(compiled, two_core())
        assert machine.cores[1].regs.read(R(1)) == 42

    def test_misaligned_get_raises(self):
        compiled = assemble(2, {
            0: [("entry", [
                op(Opcode.NOP),
                op(Opcode.HALT, align=910),
            ], None, None)],
            1: [("entry", [
                op(Opcode.GET, [R(1)], [], direction="west"),
                op(Opcode.HALT, align=910),
            ], None, None)],
        })
        with pytest.raises(Exception):
            run(compiled, two_core())

    def test_stall_bus_propagates_miss(self):
        # Core 0 misses; lock-step forces core 1 to stall identically.
        compiled = assemble(2, {
            0: [("entry", [
                op(Opcode.LOAD, [R(0)], [Imm(0), Imm(0)]),
                op(Opcode.NOP),
                op(Opcode.HALT, align=920),
            ], None, None)],
            1: [("entry", [
                op(Opcode.NOP),
                op(Opcode.NOP),
                op(Opcode.HALT, align=920),
            ], None, None)],
        })
        machine = run(compiled, two_core())
        c0, c1 = machine.stats.cores
        assert c0.stalls["dstall"] > 50
        assert c1.stalls["dstall"] == c0.stalls["dstall"]

    def test_lockstep_divergence_detected(self):
        # The cores branch to *different* logical blocks in the same cycle:
        # the lock-step assertion must catch the divergence.
        def tail(label):
            return (label, [op(Opcode.NOP), op(Opcode.HALT)], None, None)

        compiled = assemble(2, {
            0: [("entry", [
                op(Opcode.PBR, [B(0)], [], target="x"),
                op(Opcode.BR, [], [B(0)]),
            ], "x", None), tail("x"), tail("y")],
            1: [("entry", [
                op(Opcode.PBR, [B(0)], [], target="y"),
                op(Opcode.BR, [], [B(0)]),
            ], "y", None), tail("x"), tail("y")],
        })
        with pytest.raises(SimulatorError):
            run(compiled, two_core())


class TestBroadcast:
    def test_bcast_reaches_all_cores(self):
        blocks = {}
        blocks[0] = [("entry", [
            op(Opcode.CMP_LT, [P(0)], [Imm(1), Imm(2)]),
            op(Opcode.BCAST, [], [P(0)], align=930),
            op(Opcode.HALT, align=931),
        ], None, None)]
        for core in (1, 2, 3):
            blocks[core] = [("entry", [
                None,
                op(Opcode.GET, [P(0)], [], direction="bcast", bcast_src=0,
                   align=930),
                op(Opcode.HALT, align=931),
            ], None, None)]
        machine = run(assemble(4, blocks), four_core())
        for core in (1, 2, 3):
            assert machine.cores[core].regs.read(P(0)) is True


class TestModeSwitchAndThreads:
    def _dual_mode_program(self):
        """Core 0 spawns a thread on core 1, receives its result, releases."""
        blocks = {
            0: [
                ("entry", [
                    op(Opcode.MODE_SWITCH, mode="decoupled", align=940),
                ], None, "work"),
                ("work", [
                    op(Opcode.SPAWN, target_core=1, target_block="thread"),
                    op(Opcode.RECV, [R(5)], [], source_core=1),
                    op(Opcode.STORE, [], [Imm(16), Imm(0), R(5)]),
                    op(Opcode.RELEASE, target_core=1),
                ], None, "join"),
                ("join", [
                    op(Opcode.MODE_SWITCH, mode="coupled"),
                ], None, "end"),
                ("end", [op(Opcode.HALT, align=941)], None, None),
            ],
            1: [
                ("entry", [
                    op(Opcode.MODE_SWITCH, mode="decoupled", align=940),
                ], None, "park"),
                ("park", [op(Opcode.LISTEN)], None, "join"),
                ("thread", [
                    op(Opcode.ADD, [R(9)], [Imm(40), Imm(2)]),
                    op(Opcode.SEND, [], [R(9)], target_core=0),
                    op(Opcode.SLEEP),
                ], None, None),
                ("join", [
                    op(Opcode.MODE_SWITCH, mode="coupled"),
                ], None, "end"),
                ("end", [op(Opcode.HALT, align=941)], None, None),
            ],
        }
        modes = {"work": "decoupled", "park": "decoupled",
                 "thread": "decoupled", "join": "decoupled"}
        return assemble(2, blocks, modes=modes)

    def test_spawn_sleep_release_roundtrip(self):
        machine = run(self._dual_mode_program(), two_core())
        assert machine.memory.load(16) == 42
        assert machine.stats.spawns == 1
        assert machine.stats.mode_switches >= 2

    def test_mode_cycles_accounted(self):
        machine = run(self._dual_mode_program(), two_core())
        assert machine.stats.mode_cycles["decoupled"] > 0
        assert machine.stats.mode_cycles["coupled"] > 0

    def test_idle_listening_is_counted(self):
        machine = run(self._dual_mode_program(), two_core())
        assert machine.stats.cores[1].stalls["idle"] > 0

    def test_deadlock_detected_when_all_listen(self):
        blocks = {
            0: [
                ("entry", [op(Opcode.MODE_SWITCH, mode="decoupled", align=950)],
                 None, "park"),
                ("park", [op(Opcode.LISTEN)], None, None),
            ],
            1: [
                ("entry", [op(Opcode.MODE_SWITCH, mode="decoupled", align=950)],
                 None, "park"),
                ("park", [op(Opcode.LISTEN)], None, None),
            ],
        }
        compiled = assemble(2, blocks, modes={"park": "decoupled"})
        with pytest.raises(Deadlock):
            run(compiled, two_core())


class TestTermination:
    """OutOfCycles and Deadlock behaviour, with and without the stall
    fast-forwarding kernel."""

    def _nop_spin(self):
        # A block of pure NOP padding that falls through to itself: the
        # core issues every cycle and never halts.
        return assemble(1, {0: [("spin", [None], None, "spin")]}, entry="spin")

    def test_runaway_program_raises_out_of_cycles(self):
        with pytest.raises(OutOfCycles):
            run(self._nop_spin(), single_core(), max_cycles=200)

    def test_out_of_cycles_fires_at_same_cycle_with_fast_forward(self):
        # The spin issues every cycle, so fast-forwarding never engages
        # and both modes must give up at exactly the same cycle.
        cycles = []
        for fast_forward in (True, False):
            machine = VoltronMachine(
                self._nop_spin(),
                single_core(),
                max_cycles=200,
                fast_forward=fast_forward,
            )
            with pytest.raises(OutOfCycles):
                machine.run()
            cycles.append(machine.cycle)
        assert cycles[0] == cycles[1] == 200

    def _cross_recv(self):
        # Two decoupled cores each RECV from the other with nothing in
        # flight: every core is blocked and no release cycle exists.
        blocks = {
            0: [
                ("entry", [op(Opcode.MODE_SWITCH, mode="decoupled", align=950)],
                 None, "wait"),
                ("wait", [op(Opcode.RECV, [R(0)], [], source_core=1)],
                 None, None),
            ],
            1: [
                ("entry", [op(Opcode.MODE_SWITCH, mode="decoupled", align=950)],
                 None, "wait"),
                ("wait", [op(Opcode.RECV, [R(0)], [], source_core=0)],
                 None, None),
            ],
        }
        return assemble(2, blocks, modes={"wait": "decoupled"})

    def test_all_blocked_without_release_deadlocks_immediately(self):
        # Under fast-forward the classifier proves there is no finite
        # release cycle and raises Deadlock at the stall window itself
        # rather than spinning the clock to max_cycles.
        machine = VoltronMachine(self._cross_recv(), two_core(), fast_forward=True)
        with pytest.raises(Deadlock):
            machine.run()
        # A couple hundred cycles to clear the mode switch, nowhere near
        # the 20M-cycle default budget single-stepping would burn.
        assert machine.cycle < 500

    def test_all_blocked_without_release_exhausts_cycles_when_stepping(self):
        # Single-stepping has no deadlock oracle for blocked RECVs: the
        # same program burns the cycle budget instead.
        machine = VoltronMachine(
            self._cross_recv(), two_core(), max_cycles=300, fast_forward=False
        )
        with pytest.raises(OutOfCycles):
            machine.run()

    def test_out_of_cycles_carries_per_core_diagnostics(self):
        machine = VoltronMachine(self._nop_spin(), single_core(), max_cycles=200)
        with pytest.raises(OutOfCycles) as excinfo:
            machine.run()
        message = str(excinfo.value)
        # Position, stall state, and queue occupancy for every core.
        assert "mode=" in message and "cycle=" in message
        assert "core 0:" in message
        assert "pc=" in message
        assert "pending msg(s)" in message

    def test_deadlock_carries_per_core_diagnostics(self):
        machine = VoltronMachine(self._cross_recv(), two_core(), fast_forward=True)
        with pytest.raises(Deadlock) as excinfo:
            machine.run()
        message = str(excinfo.value)
        assert "core 0:" in message and "core 1:" in message
        # The cross-RECV hang: both cores stuck in their wait block with
        # empty queues -- readable straight from the exception.
        assert message.count("queue=0 pending msg(s)") == 2
        assert "wait" in message

    def test_diagnostics_carry_pc_per_live_core(self):
        # Every live core's program counter appears in function:label:slot
        # form, so a hung chaos run is debuggable from the message alone.
        machine = VoltronMachine(
            self._cross_recv(), two_core(), max_cycles=300, fast_forward=False
        )
        with pytest.raises(OutOfCycles) as excinfo:
            machine.run()
        message = str(excinfo.value)
        assert len(re.findall(r"pc=\w+:wait:\d+", message)) == 2
        assert message.count("queue=") == 2

    def test_diagnostics_render_blocked_stall_cause(self):
        # A core held by the pipeline (next_free in the future) reports
        # the stall cause and the release cycle.
        machine = VoltronMachine(self._nop_spin(), single_core(), max_cycles=20)
        with pytest.raises(OutOfCycles):
            machine.run()
        core = machine.cores[0]
        core.block_until(core.next_free + 50, "dstall")
        text = machine._core_diagnostics()
        assert re.search(r"blocked\[dstall\] until cycle \d+", text)
        assert "queue=0 pending msg(s)" in text
        # A free core says so instead of inventing a cause.
        core.next_free = 0
        assert "free" in machine._core_diagnostics()


class TestProgramArgs:
    def test_args_reach_all_cores(self):
        program = Program("argy")
        fn = Function("main")
        arg = fn.regs.gpr()
        fn.params = [arg]
        fn.add_block("entry")
        program.add_function(fn)
        compiled = CompiledProgram(program, 2)
        for core in range(2):
            cf = CoreFunction("main", "entry")
            cf.add_block(CoreBlock("entry", slots=[
                op(Opcode.STORE, [], [Imm(core), Imm(0), arg]),
                op(Opcode.HALT, align=960),
            ]))
            compiled.add_function(core, cf)
        machine = VoltronMachine(compiled, two_core(), args=(77,))
        machine.run()
        assert machine.memory.load(0) == 77
        assert machine.memory.load(1) == 77

    def test_wrong_arity_rejected(self):
        compiled = assemble(1, {0: [("entry", [op(Opcode.HALT)], None, None)]})
        with pytest.raises(ValueError):
            VoltronMachine(compiled, single_core(), args=(1,))
