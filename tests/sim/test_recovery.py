"""Unit and integration tests for the destructive-fault recovery
subsystem: link-layer CRC/retransmit, the blackout watchdog with
checkpoint rollback and chunk remapping, and graceful degradation.

The end-to-end cells reuse the chaos-differential contract: whatever the
destructive plan does, final memory must be bit-identical to the
fault-free golden run and every chunk must still commit exactly once.
"""

import pytest

from repro.arch import mesh, single_core
from repro.compiler import VoltronCompiler
from repro.sim import (
    FaultConfig,
    FaultPlan,
    RECOVERY_COUNTERS,
    RecoveryManager,
    VoltronMachine,
)
from repro.sim.network import Message
from repro.sim.recovery import (
    EVENT_COUNTER_FOR_KIND,
    message_crc,
    payload_crc,
    scramble,
)
from repro.sim.tm import TransactionalMemory
from repro.workloads.suite import build


def _machine(name, n_cores, strategy, **fault_kwargs):
    bench = build(name)
    config = single_core() if n_cores == 1 else mesh(n_cores)
    compiled = VoltronCompiler(bench.program).compile(strategy, config)
    golden = VoltronMachine(compiled, config)
    faults = None
    if fault_kwargs:
        faults = FaultPlan(FaultConfig(**fault_kwargs))
    return VoltronMachine(compiled, config, faults=faults), golden


class TestCRC:
    def test_payload_crc_is_stable_across_calls(self):
        a = payload_crc(0, 1, "data", None, 7, 42)
        b = payload_crc(0, 1, "data", None, 7, 42)
        assert a == b

    def test_payload_crc_covers_every_field(self):
        base = payload_crc(0, 1, "data", None, 7, 42)
        assert payload_crc(2, 1, "data", None, 7, 42) != base
        assert payload_crc(0, 3, "data", None, 7, 42) != base
        assert payload_crc(0, 1, "spawn", None, 7, 42) != base
        assert payload_crc(0, 1, "data", "ch0", 7, 42) != base
        assert payload_crc(0, 1, "data", None, 8, 42) != base
        assert payload_crc(0, 1, "data", None, 7, 43) != base

    def test_message_crc_matches_payload_crc(self):
        message = Message(src=0, dst=1, value=13, kind="data", tag=None,
                          seq=5)
        assert message_crc(message) == payload_crc(0, 1, "data", None, 5, 13)

    def test_scramble_always_changes_the_value(self):
        for value in (True, False, 0, 1, 42, -7, 0.0, 3.5, -2.25, "", "hi",
                      None):
            assert scramble(value) != value

    def test_scramble_checks_bool_before_int(self):
        # bool is an int subclass; the wire model must not turn True into
        # a large integer via the XOR path.
        assert scramble(True) is False
        assert scramble(False) is True

    def test_scramble_is_deterministic(self):
        assert scramble(42) == scramble(42)
        assert scramble("abc") == scramble("abc")

    def test_scrambled_payload_fails_the_crc(self):
        message = Message(src=0, dst=1, value=42, seq=3)
        message.crc = message_crc(message)
        message.value = scramble(message.value)
        assert message_crc(message) != message.crc


class TestSerialSlot:
    def _tm(self):
        from repro.sim.memory import MainMemory

        return TransactionalMemory(MainMemory())

    def test_fresh_region_admits_only_chunk_zero(self):
        tm = self._tm()
        assert tm.serial_slot_ready(0, 0, 4)
        assert not tm.serial_slot_ready(0, 1, 4)
        assert not tm.serial_slot_ready(0, 3, 4)

    def test_slots_open_in_commit_order(self):
        tm = self._tm()
        tm.begin(0, region=0, order=0, n_chunks=2)
        assert not tm.serial_slot_ready(0, 1, 2)
        assert tm.try_commit(0)
        assert tm.serial_slot_ready(0, 1, 2)
        assert not tm.serial_slot_ready(0, 0, 2)

    def test_region_reentry_wraps_back_to_chunk_zero(self):
        tm = self._tm()
        for order in range(2):
            tm.begin(0, region=0, order=order, n_chunks=2)
            assert tm.try_commit(0)
        # The counter wrapped: a second entry of the same region starts
        # over at chunk 0.
        assert tm.serial_slot_ready(0, 0, 2)
        assert not tm.serial_slot_ready(0, 1, 2)

    def test_other_region_starts_at_chunk_zero(self):
        tm = self._tm()
        tm.begin(0, region=0, order=0, n_chunks=2)
        assert tm.try_commit(0)
        assert tm.serial_slot_ready(9, 0, 3)
        assert not tm.serial_slot_ready(9, 1, 3)


class TestWiring:
    def test_destructive_plan_builds_the_recovery_manager(self):
        machine, _ = _machine(
            "rawcaudio", 2, "tlp", profile="destructive", seed=1
        )
        assert isinstance(machine.recovery, RecoveryManager)
        assert machine.network.recovery is machine.recovery
        assert machine.fast_forward is False

    def test_timing_plan_leaves_recovery_detached(self):
        machine, _ = _machine("rawcaudio", 2, "tlp", profile="timing", seed=1)
        assert machine.recovery is None
        assert machine.network.recovery is None

    def test_no_faults_leaves_recovery_detached(self):
        machine, _ = _machine("rawcaudio", 2, "tlp")
        assert machine.recovery is None
        assert machine.network.recovery is None

    def test_destructive_with_zero_rates_stays_detached(self):
        machine, _ = _machine(
            "rawcaudio", 2, "tlp", profile="destructive", corrupt_rate=0.0,
            drop_rate=0.0, blackout_rate=0.0,
        )
        assert machine.recovery is None

    def test_clean_run_reports_no_recovery_counters(self):
        machine, _ = _machine("rawcaudio", 2, "tlp")
        stats = machine.run()
        assert stats.recovery == {}
        assert "recovery" not in stats.to_dict()

    def test_destructive_run_lands_counters_in_stats(self):
        machine, _ = _machine(
            "rawcaudio", 2, "tlp", profile="destructive", seed=2,
            corrupt_rate=0.2, drop_rate=0.2,
        )
        stats = machine.run()
        assert set(stats.recovery) == set(RECOVERY_COUNTERS)
        assert stats.recovery["retransmits"] > 0
        assert stats.to_dict()["recovery"] == stats.recovery
        assert stats.recovery == machine.recovery.counters_dict()


class TestLinkLayer:
    def _run(self, **kwargs):
        kwargs.setdefault("profile", "destructive")
        machine, golden = _machine("rawcaudio", 2, "tlp", **kwargs)
        golden_stats = golden.run()
        stats = machine.run()
        assert machine.final_memory() == golden.final_memory()
        assert stats.tx_commits == golden_stats.tx_commits
        return machine.recovery.counters

    def test_corruptions_are_caught_and_retransmitted(self):
        counters = self._run(seed=3, corrupt_rate=0.3, drop_rate=0.0)
        assert counters["crc_errors"] > 0
        assert counters["drops"] == 0
        assert counters["retransmits"] == counters["crc_errors"]

    def test_drops_are_timed_out_and_retransmitted(self):
        counters = self._run(seed=4, corrupt_rate=0.0, drop_rate=0.3)
        assert counters["drops"] > 0
        assert counters["crc_errors"] == 0
        assert counters["retransmits"] == counters["drops"]

    def test_every_failed_attempt_is_retransmitted_exactly_once(self):
        counters = self._run(seed=5, corrupt_rate=0.2, drop_rate=0.2)
        assert counters["retransmits"] == (
            counters["crc_errors"] + counters["drops"]
        )

    def test_small_budget_falls_back_to_reliable_delivery(self):
        # corrupt_rate=1.0 fails every sampled attempt, so every message
        # burns through the budget and escapes via the reliable slot.
        counters = self._run(
            seed=6, corrupt_rate=1.0, drop_rate=0.0, retransmit_budget=1
        )
        assert counters["fallbacks"] > 0
        assert counters["retransmits"] >= counters["fallbacks"]

    def test_counters_are_reproducible(self):
        a = self._run(seed=7, corrupt_rate=0.2, drop_rate=0.1)
        b = self._run(seed=7, corrupt_rate=0.2, drop_rate=0.1)
        assert a == b


class TestBlackout:
    def _run(self, **kwargs):
        kwargs.setdefault("profile", "destructive")
        kwargs.setdefault("corrupt_rate", 0.0)
        kwargs.setdefault("drop_rate", 0.0)
        machine, golden = _machine("171.swim", 4, "llp", **kwargs)
        golden_stats = golden.run()
        assert golden_stats.tx_commits > 0  # the cell actually speculates
        stats = machine.run()
        assert machine.final_memory() == golden.final_memory()
        assert stats.tx_commits == golden_stats.tx_commits
        assert stats.tx_aborts >= golden_stats.tx_aborts
        return machine

    def test_every_blackout_is_detected_and_rolled_back(self):
        machine = self._run(seed=8, blackout_rate=0.0005)
        counters = machine.recovery.counters
        assert counters["blackouts"] > 0
        assert counters["watchdog_detections"] == counters["blackouts"]
        assert counters["chunk_rollbacks"] == counters["blackouts"]
        assert counters["blackout_cycles"] >= counters["blackouts"]

    def test_long_blackouts_remap_the_orphaned_chunk(self):
        # Dark windows far past the restore latency force remaps; the
        # placement ledger records the adopters.
        machine = self._run(seed=9, blackout_rate=0.0005, max_blackout=200)
        counters = machine.recovery.counters
        assert counters["chunks_remapped"] > 0
        placement = machine.recovery.placement
        assert any(core != home for core, home in placement.items())

    def test_blackout_budget_triggers_degradation(self):
        machine = self._run(
            seed=10, blackout_rate=0.002, blackout_budget=1
        )
        counters = machine.recovery.counters
        assert counters["regions_degraded"] > 0
        assert machine.recovery.degraded
        assert counters["regions_degraded"] == len(machine.recovery.degraded)

    def test_degraded_cores_suffer_no_further_blackouts(self):
        machine = self._run(seed=10, blackout_rate=0.002, blackout_budget=1)
        recovery = machine.recovery
        blackouts_after = recovery.counters["blackouts"]
        for core in machine.cores:
            if core.id in recovery.degraded:
                # maybe_blackout masks degraded cores outright.
                assert not recovery.maybe_blackout(core, machine.cycle)
        assert recovery.counters["blackouts"] == blackouts_after


class TestObservability:
    def test_recovery_events_reconcile_with_counters(self):
        from repro.obs import Observability
        from repro.obs.timeline import reconcile, summarize

        bench = build("rawcaudio")
        config = mesh(2)
        compiled = VoltronCompiler(bench.program).compile("tlp", config)
        plan = FaultPlan(FaultConfig(
            profile="destructive", seed=11, corrupt_rate=0.2, drop_rate=0.2,
        ))
        obs = Observability()
        machine = VoltronMachine(compiled, config, faults=plan, obs=obs)
        stats = machine.run()
        assert obs.recovery_events
        # reconcile raises on any timeline/stats mismatch; surviving it
        # proves every counter bump emitted exactly one event.
        summary = reconcile(summarize(obs), stats)
        for event in obs.recovery_events:
            assert event.kind in EVENT_COUNTER_FOR_KIND
        for key, value in summary.recovery.items():
            assert stats.recovery[key] == value

    def test_every_event_kind_maps_to_a_counter(self):
        assert set(EVENT_COUNTER_FOR_KIND.values()) <= set(RECOVERY_COUNTERS)
        # blackout_cycles is an aggregate folded from event durations,
        # never an event kind of its own.
        assert "blackout_cycles" not in EVENT_COUNTER_FOR_KIND.values()


class TestBothProfile:
    def test_timing_and_destructive_faults_compose(self):
        machine, golden = _machine(
            "rawcaudio", 2, "tlp", profile="both", seed=12, rate=0.02,
            corrupt_rate=0.1, drop_rate=0.1,
        )
        golden_stats = golden.run()
        stats = machine.run()
        assert machine.faults.injections() > 0
        assert machine.recovery.counters["retransmits"] > 0
        assert machine.final_memory() == golden.final_memory()
        assert stats.tx_commits == golden_stats.tx_commits


class TestScaleOutRecovery:
    """Cluster-aware watchdog, nearest-survivor remap, scaled budgets,
    and the directory scrub on 16-64-core machines."""

    def _scaled_machine(self, preset_name, strategy="llp", bench="171.swim",
                        **fault_kwargs):
        from repro.arch.config import resolve_machine

        fault_kwargs.setdefault("profile", "destructive")
        fault_kwargs.setdefault("corrupt_rate", 0.0)
        fault_kwargs.setdefault("drop_rate", 0.0)
        config = resolve_machine(preset_name)
        compiled = VoltronCompiler(build(bench).program).compile(
            strategy, config
        )
        golden = VoltronMachine(compiled, config)
        faults = FaultPlan(FaultConfig(**fault_kwargs))
        return VoltronMachine(compiled, config, faults=faults), golden

    def test_budgets_scale_with_the_machine_shape(self):
        small, _ = self._scaled_machine("four", blackout_rate=0.001)
        assert small.recovery.blackout_budget == 2      # config default x 1
        assert small.recovery.retransmit_budget == 4    # config default x 1
        big, _ = self._scaled_machine("mesh64-directory", blackout_rate=0.001)
        assert big.recovery.blackout_budget == 2 * 16   # 64 cores
        assert big.recovery.retransmit_budget == 4 * 4  # 8x8 mesh diameter

    def test_adopter_is_the_nearest_survivor(self):
        machine, _ = self._scaled_machine("mesh16", blackout_rate=0.001)
        recovery = machine.recovery
        # Core 0 sits at (0, 0) on the 4x4 mesh: cores 1 and 4 are one
        # hop away; ties break to the lowest id.
        assert recovery._adopter(0) == 1
        recovery._down[1] = {"wake": 0, "detect": 0}
        assert recovery._adopter(0) == 4
        # The old linear scan would have picked core 2 (two hops).
        assert machine.mesh.hops(0, 4) < machine.mesh.hops(0, 2)
        del recovery._down[1]

    def test_clustered_detection_pays_the_stall_network_penalty(self):
        """The watchdog hears a remote cluster's silence only after the
        cluster stall network propagates it: detection on a clustered
        machine lands ``cluster_stall_latency`` later than the 4-core
        machine's ``heartbeat_misses`` window."""
        def detect_delay(machine):
            # Arm the recoverable window by hand (an active transaction
            # whose checkpoint matches the call depth), then inject.
            core = machine.cores[0]
            machine.tm.begin(0, region=0, order=0, n_chunks=1)
            core.checkpoint_registers("entry")
            assert machine.recovery.maybe_blackout(core, cycle=100)
            return machine.recovery._down[0]["detect"] - 100

        small, _ = self._scaled_machine("four", blackout_rate=1.0)
        assert small._cluster_penalty == 0
        misses = small.recovery.config.heartbeat_misses
        assert detect_delay(small) == misses
        big, _ = self._scaled_machine("mesh16", blackout_rate=1.0)
        assert big._cluster_penalty == big.config.cluster_stall_latency
        assert detect_delay(big) == misses + big.config.cluster_stall_latency

    def test_directory_blackouts_scrub_and_stay_bit_identical(self):
        machine, golden = self._scaled_machine(
            "mesh16-directory", seed=20, blackout_rate=0.0005,
        )
        golden_stats = golden.run()
        assert golden_stats.tx_commits > 0
        stats = machine.run()
        counters = machine.recovery.counters
        assert counters["blackouts"] > 0
        assert counters["directory_scrubs"] == counters["watchdog_detections"]
        machine.bus.check_directory()
        assert machine.final_memory() == golden.final_memory()
        assert stats.tx_commits == golden_stats.tx_commits
        # The per-cluster heartbeat ledger partitions the detections.
        by_cluster = machine.recovery.watchdog_by_cluster
        assert sum(by_cluster.values()) == counters["watchdog_detections"]
        assert all(
            0 <= cluster < 4 for cluster in by_cluster
        )  # 16 cores / coupled_group_size=4

    def test_snoop_blackouts_never_scrub(self):
        machine, golden = self._scaled_machine(
            "mesh16-snoop", seed=20, blackout_rate=0.0005,
        )
        golden.run()
        machine.run()
        counters = machine.recovery.counters
        assert counters["blackouts"] > 0
        assert counters["directory_scrubs"] == 0
        assert machine.final_memory() == golden.final_memory()

    def test_remap_histogram_lands_in_stats_and_report_order(self):
        from repro.sim.recovery import REMAP_HOPS_PREFIX

        machine, golden = self._scaled_machine(
            "mesh16-directory", seed=21, blackout_rate=0.0005,
            max_blackout=200,
        )
        golden.run()
        stats = machine.run()
        counters = machine.recovery.counters
        assert counters["chunks_remapped"] > 0
        histogram = {
            key: value for key, value in stats.recovery.items()
            if key.startswith(REMAP_HOPS_PREFIX)
        }
        assert sum(histogram.values()) == counters["chunks_remapped"]
        assert all(int(key.rsplit("_", 1)[1]) >= 1 for key in histogram)
        # Aggregates never count as detection/repair events.
        assert machine.recovery.events_recorded() == sum(
            value for key, value in counters.items()
            if key != "blackout_cycles"
            and not key.startswith(REMAP_HOPS_PREFIX)
        )
