"""The parametric generator's contracts: determinism, handles, knobs.

The load-bearing property is *handle determinism*: a
``gen:<seed>:<knobs-hash>`` handle pins one program bit-for-bit, across
builds, processes, and harness seeds -- that is what lets generated
workloads share the content-hash result cache with named benchmarks.
"""

import pytest

from repro.harness.cache import cache_key, program_fingerprint
from repro.harness.experiments import ExperimentRunner
from repro.workloads.generator import (
    DEFAULT_KNOBS,
    GenKnobs,
    build_generated,
    generate,
    generate_handles,
    generate_recipe,
    is_generated,
    knobs_hash,
    make_handle,
    parse_handle,
    register_knobs,
)
from repro.workloads.suite import BENCHMARKS, build


class TestDeterminism:
    def test_same_seed_and_knobs_is_byte_identical_ir(self):
        """Two independent builds of one handle: identical fingerprint
        (the exact text the result cache hashes)."""
        a = generate(42)
        b = generate(42)
        assert a.recipe == b.recipe
        assert program_fingerprint(a.program) == program_fingerprint(b.program)

    def test_identical_run_result_across_two_builds(self):
        """Same handle, two fresh runners: the *entire* serialized
        RunResult matches -- cycles, stats, region table, everything.
        Guards the cache content-hash against nondeterministic
        generation."""
        handle = make_handle(13)
        results = []
        for _ in range(2):
            runner = ExperimentRunner(benchmarks=[handle])
            results.append(runner.run(handle, 2, "hybrid").to_dict())
        assert results[0] == results[1]

    def test_build_seed_does_not_leak_into_generated_programs(self):
        """The harness build seed must not perturb a generated program
        (the handle alone pins it), or cache keys would drift between
        sessions with different seeds."""
        a = build(make_handle(5), seed=1)
        b = build(make_handle(5), seed=999)
        assert program_fingerprint(a.program) == program_fingerprint(b.program)

    def test_different_seeds_differ(self):
        assert generate_recipe(1) != generate_recipe(2) or (
            program_fingerprint(generate(1).program)
            != program_fingerprint(generate(2).program)
        )

    def test_knobs_steer_generation(self):
        wide = GenKnobs(regions=(6, 6))
        narrow = GenKnobs(regions=(1, 1))
        assert len(generate_recipe(3, wide)) == 6
        assert len(generate_recipe(3, narrow)) == 1


class TestHandles:
    def test_handle_round_trip(self):
        knobs = GenKnobs(trips=(8, 16), regions=(1, 2))
        handle = make_handle(9, knobs)
        seed, parsed = parse_handle(handle)
        assert seed == 9
        assert parsed == knobs

    def test_short_handle_means_default_knobs(self):
        assert parse_handle("gen:4") == (4, DEFAULT_KNOBS)

    def test_unregistered_hash_rejected(self):
        with pytest.raises(KeyError, match="register"):
            parse_handle("gen:1:000000000000")

    def test_malformed_handles_rejected(self):
        for bad in ("gen:", "gen:x", "gen:1:2:3", "rawcaudio"):
            with pytest.raises(ValueError):
                parse_handle(bad)

    def test_is_generated(self):
        assert is_generated("gen:1")
        assert not is_generated("rawcaudio")

    def test_knobs_hash_is_content_addressed(self):
        assert knobs_hash(GenKnobs()) == knobs_hash(GenKnobs())
        assert knobs_hash(GenKnobs()) != knobs_hash(GenKnobs(trips=(8, 16)))
        digest = register_knobs(GenKnobs(trips=(8, 16)))
        assert len(digest) == 12

    def test_generate_handles_sequence(self):
        handles = generate_handles(3, base_seed=10)
        assert [parse_handle(h)[0] for h in handles] == [10, 11, 12]

    def test_suite_build_delegates(self):
        handle = make_handle(6)
        bench = build(handle)
        assert bench.name == handle
        assert bench.outputs
        assert bench.recipe

    def test_knob_validation(self):
        with pytest.raises(ValueError):
            GenKnobs(trips=(0, 4))
        with pytest.raises(ValueError):
            GenKnobs(miss_heavy_pct=101)
        with pytest.raises(ValueError):
            GenKnobs(kernel_weights=(("doall", 0),))
        with pytest.raises(ValueError):
            GenKnobs(kernel_weights=(("nope", 1),))


class TestCacheKeyStability:
    def test_gen_cell_keys_stable_across_runners(self):
        """The satellite fix: generated handles key the result cache as
        stably as named benchmarks -- two independent sessions compute
        the same key for the same cell."""
        handle = make_handle(21)
        keys = [
            ExperimentRunner(benchmarks=[handle])._cell_key(handle, 4, "tlp")
            for _ in range(2)
        ]
        assert keys[0] == keys[1]

    def test_gen_and_named_keys_share_one_space(self):
        """Handles and names hash through the identical fingerprint
        path, and distinct programs never collide."""
        handle = make_handle(21)
        runner = ExperimentRunner(benchmarks=[handle, "rawcaudio"])
        assert runner._cell_key(handle, 4, "tlp") != runner._cell_key(
            "rawcaudio", 4, "tlp"
        )

    def test_direct_cache_key_matches_runner_key(self):
        handle = make_handle(33)
        runner = ExperimentRunner(benchmarks=[handle])
        expected = cache_key(
            build_generated(handle).program,
            runner.machine_config(4),
            runner.seed,
            "hybrid",
            runner.max_cycles,
        )
        assert runner._cell_key(handle, 4, "hybrid") == expected


class TestTmConflictKnob:
    def test_density_squeezes_histogram_bins(self):
        dense = GenKnobs(
            tm_conflict_pct=100, kernel_weights=(("histogram", 1),)
        )
        sparse = GenKnobs(
            tm_conflict_pct=0, kernel_weights=(("histogram", 1),)
        )
        dense_bins = [
            kwargs["bins"] for _, kwargs in generate_recipe(5, dense)
        ]
        sparse_bins = [
            kwargs["bins"] for _, kwargs in generate_recipe(5, sparse)
        ]
        assert max(dense_bins) == 4  # everything collides
        assert min(sparse_bins) > 4

    def test_generated_names_avoid_suite_collisions(self):
        assert not any(name.startswith("gen:") for name in BENCHMARKS)
