"""Tests for the 25-benchmark suite registry."""

import pytest

from repro.isa import run_program
from repro.workloads.suite import BENCHMARKS, RECIPES, build


class TestRegistry:
    def test_suite_has_the_papers_25_benchmarks(self):
        assert len(BENCHMARKS) == 25

    def test_paper_benchmark_names_present(self):
        for name in (
            "052.alvinn", "164.gzip", "171.swim", "179.art", "197.parser",
            "cjpeg", "epic", "gsmdecode", "mpeg2enc", "unepic",
        ):
            assert name in BENCHMARKS

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            build("999.nothere")

    def test_every_recipe_uses_known_kernels(self):
        from repro.workloads.kernels import KERNELS

        for recipe in RECIPES.values():
            for kernel_name, _kwargs in recipe:
                assert kernel_name in KERNELS


class TestBuiltBenchmarks:
    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_builds_and_validates(self, name):
        bench = build(name)
        bench.program.validate()
        assert bench.outputs
        assert len(bench.outputs) == len(bench.recipe)

    def test_deterministic_build(self):
        a = build("gsmdecode", seed=3)
        b = build("gsmdecode", seed=3)
        ra = run_program(a.program)
        rb = run_program(b.program)
        for out in a.outputs:
            assert ra.array_values(a.program, out) == [
                v for v in rb.array_values(b.program, out)
            ]

    def test_seed_changes_data(self):
        a = build("gsmdecode", seed=3)
        b = build("gsmdecode", seed=4)
        ra = run_program(a.program)
        rb = run_program(b.program)
        differs = any(
            ra.array_values(a.program, oa) != rb.array_values(b.program, ob)
            for oa, ob in zip(a.outputs, b.outputs)
        )
        assert differs

    def test_fig7_and_fig9_shapes_in_gsmdecode(self):
        """gsmdecode must contain a DOALL loop (Fig. 7) and a high-ILP
        region (Fig. 9), per the paper's examples."""
        kinds = [kernel for kernel, _ in RECIPES["gsmdecode"]]
        assert "doall" in kinds and "ilp" in kinds

    def test_fig8_shape_in_gzip(self):
        kinds = [kernel for kernel, _ in RECIPES["164.gzip"]]
        assert "match" in kinds

    def test_art_is_miss_dominated(self):
        kinds = [kernel for kernel, _ in RECIPES["179.art"]]
        assert kinds.count("strand") >= 2

    def test_parser_and_vortex_make_calls(self):
        for name in ("197.parser", "255.vortex"):
            kinds = [kernel for kernel, _ in RECIPES[name]]
            assert "call" in kinds

    def test_epic_is_pipeline_heavy(self):
        kinds = [kernel for kernel, _ in RECIPES["epic"]]
        assert kinds.count("dswp") >= 2
