"""Unit tests for the workload kernels: each must exhibit the parallelism
class it is designed for, and all must run correctly serially."""

import pytest

from repro.compiler import (
    VoltronCompiler,
    find_loops,
    plan_doall,
    profile_program,
    select_regions,
)
from repro.isa import ProgramBuilder, run_program
from repro.workloads.kernels import (
    KERNELS,
    KernelContext,
    MISS_ARRAY,
    doall_kernel,
    dswp_kernel,
    ilp_kernel,
    match_kernel,
    reduction_kernel,
    serial_kernel,
    strand_kernel,
)


def build_with(kernel, **kwargs):
    pb = ProgramBuilder("t")
    fb = pb.function("main")
    fb.block("entry")
    ctx = KernelContext(pb=pb, fb=fb, seed=9)
    out = kernel(ctx, **kwargs)
    fb.halt()
    return pb.finish(), out


class TestKernelBasics:
    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_kernel_runs_and_produces_output(self, name):
        program, out = build_with(KERNELS[name])
        result = run_program(program)
        values = result.array_values(program, out)
        assert any(v != 0 for v in values), f"{name} produced all zeros"

    def test_kernels_compose_in_one_program(self):
        pb = ProgramBuilder("t")
        fb = pb.function("main")
        fb.block("entry")
        ctx = KernelContext(pb=pb, fb=fb, seed=9)
        outs = [KERNELS[name](ctx) for name in sorted(KERNELS)]
        fb.halt()
        program = pb.finish()
        result = run_program(program)
        assert len(outs) == len(KERNELS)
        assert result.dynamic_ops > 1000

    def test_rand_init_deterministic(self):
        ctx_args = dict(pb=None, fb=None, seed=7)
        a = KernelContext(**ctx_args).rand_init(16)
        b = KernelContext(**ctx_args).rand_init(16)
        assert a == b
        assert all(v > 0 for v in a)

    def test_rand_init_seed_sensitivity(self):
        a = KernelContext(pb=None, fb=None, seed=7).rand_init(16)
        b = KernelContext(pb=None, fb=None, seed=8).rand_init(16)
        assert a != b


class TestKernelCharacter:
    def test_doall_kernel_is_statistical_doall(self):
        program, _ = build_with(doall_kernel, trips=64)
        profile = profile_program(program)
        function = program.main()
        loop = find_loops(function)[0]
        assert plan_doall(program, function, loop, profile, 4) is not None

    def test_reduction_kernel_has_accumulator(self):
        program, _ = build_with(reduction_kernel, trips=64)
        profile = profile_program(program)
        function = program.main()
        loop = find_loops(function)[0]
        plan = plan_doall(program, function, loop, profile, 4)
        assert plan is not None and len(plan.accumulators) == 1

    def test_serial_kernel_resists_all_parallelization(self):
        program, _ = build_with(serial_kernel, trips=64)
        profile = profile_program(program)
        regions = select_regions(program, program.main(), profile, 4, "hybrid")
        assert all(r.strategy not in ("doall", "dswp") for r in regions)

    def test_dswp_kernel_selected_for_pipeline(self):
        program, _ = build_with(dswp_kernel, trips=64)
        profile = profile_program(program)
        regions = select_regions(program, program.main(), profile, 4, "hybrid")
        assert any(r.strategy == "dswp" for r in regions)

    def test_strand_kernel_misses_heavily(self):
        program, _ = build_with(strand_kernel, trips=64)
        profile = profile_program(program)
        from repro.isa.operations import Opcode

        loop_block = next(
            b
            for b in program.main().ordered_blocks()
            if b.attrs.get("loop_name")
        )
        loads = [op for op in loop_block.ops if op.opcode is Opcode.LOAD]
        assert loads
        assert any(profile.likely_missing(load) for load in loads)

    def test_match_kernel_terminates_at_mismatch(self):
        program, out = build_with(match_kernel, length=64, mismatch_at=20)
        result = run_program(program)
        count = result.array_values(program, out)[0]
        # Strided by 2: the loop stops once the planted mismatch is read.
        assert 0 < count <= 32

    def test_ilp_kernel_width_scales_chains(self):
        program4, _ = build_with(ilp_kernel, trips=16, chains=4)
        program2, _ = build_with(ilp_kernel, trips=16, chains=2)
        ops4 = sum(len(b.ops) for b in program4.main().ordered_blocks())
        ops2 = sum(len(b.ops) for b in program2.main().ordered_blocks())
        assert ops4 > ops2

    def test_call_kernel_defines_helper_function(self):
        program, _ = build_with(KERNELS["call"], trips=8)
        assert len(program.functions) == 2

    def test_stencil_kernel_is_statistical_doall(self):
        program, _ = build_with(KERNELS["stencil"], trips=64)
        profile = profile_program(program)
        function = program.main()
        loop = find_loops(function)[0]
        assert plan_doall(program, function, loop, profile, 4) is not None

    def test_stencil_matches_reference_formula(self):
        program, out = build_with(KERNELS["stencil"], trips=16)
        result = run_program(program)
        values = result.array_values(program, out)
        symbol = next(
            s for n, s in program.arrays.items() if n.endswith("_a")
        )
        a = [program.initial_memory.get(symbol.base + k, 0) for k in range(18)]
        for i in range(1, 17):
            assert values[i] == (a[i - 1] + 2 * a[i] + a[i + 1]) // 4

    def test_histogram_kernel_rejected_for_speculation(self):
        """Colliding keys are observed by the profile, so the scatter loop
        must NOT be classified statistical DOALL."""
        program, _ = build_with(KERNELS["histogram"], trips=96, bins=16)
        profile = profile_program(program)
        function = program.main()
        loop = find_loops(function)[0]
        assert plan_doall(program, function, loop, profile, 4) is None

    def test_histogram_counts_sum_to_trips(self):
        program, out = build_with(KERNELS["histogram"], trips=48, bins=8)
        result = run_program(program)
        assert sum(result.array_values(program, out)) == 48
