"""The failure shrinker: synthetic oracles plus a planted miscompile.

The synthetic tests pin the search mechanics (region drops, param cuts,
floors, budget) with oracles that never touch the simulator.  The
planted test is the satellite's point: drive the shrinker with the
*real* fuzzing oracle over a PR-5 mutation-harness miscompile and show
it hands back a smaller recipe that still reproduces the find, persisted
as a replayable artifact.
"""

import json

import pytest

from repro.analysis import apply_mutation, check_benchmark
from repro.workloads.generator import GenKnobs, build_recipe, generate_recipe
from repro.workloads.shrink import shrink_recipe, write_repro


def _fails_if(predicate, message="boom"):
    """Oracle factory: fail (with ``message``) iff predicate(recipe)."""

    def oracle(recipe):
        return message if predicate(recipe) else None

    return oracle


class TestShrinkMechanics:
    def test_passing_recipe_is_rejected_up_front(self):
        with pytest.raises(ValueError, match="failing recipe"):
            shrink_recipe(
                (("doall", {"trips": 8}),), _fails_if(lambda r: False)
            )

    def test_irrelevant_regions_dropped(self):
        recipe = (
            ("ilp", {"trips": 16}),
            ("doall", {"trips": 32}),
            ("serial", {"trips": 8}),
            ("stencil", {"trips": 16}),
        )
        oracle = _fails_if(
            lambda r: any(kernel == "doall" for kernel, _ in r)
        )
        result = shrink_recipe(recipe, oracle)
        assert [kernel for kernel, _ in result.recipe] == ["doall"]
        assert result.original_regions == 4
        assert any("drop region" in step for step in result.steps)

    def test_interacting_regions_both_survive(self):
        """A failure needing two regions keeps both -- the greedy drop
        rescans instead of committing to a single-region answer."""
        recipe = (
            ("ilp", {"trips": 16}),
            ("doall", {"trips": 32}),
            ("dswp", {"trips": 16}),
        )
        oracle = _fails_if(
            lambda r: {"ilp", "dswp"} <= {kernel for kernel, _ in r}
        )
        result = shrink_recipe(recipe, oracle)
        assert {kernel for kernel, _ in result.recipe} == {"ilp", "dswp"}

    def test_params_cut_to_their_floors(self):
        recipe = (("doall", {"trips": 96, "work": 5}),)
        result = shrink_recipe(recipe, _fails_if(lambda r: True))
        (_, kwargs), = result.recipe
        assert kwargs["trips"] == 2  # _PARAM_FLOORS["trips"]
        assert kwargs["work"] == 1

    def test_param_cut_stops_where_failure_stops(self):
        """Cuts that make the recipe pass are rolled back: the minimized
        recipe must still fail."""
        recipe = (("doall", {"trips": 96}),)
        oracle = _fails_if(lambda r: r[0][1]["trips"] >= 24)
        result = shrink_recipe(recipe, oracle)
        assert result.recipe[0][1]["trips"] >= 24
        assert oracle(result.recipe) is not None

    def test_check_budget_is_a_hard_bound(self):
        recipe = tuple(("doall", {"trips": 96}) for _ in range(6))
        result = shrink_recipe(
            recipe, _fails_if(lambda r: True), max_checks=5
        )
        assert result.checks <= 5
        assert result.failure


class TestPlantedMiscompile:
    """Shrink a real find: the PR-5 ``drop_send`` miscompile planted
    into every compiled cell via the oracle's mutate hook."""

    KNOBS = GenKnobs(trips=(8, 16), regions=(4, 4))

    @staticmethod
    def _oracle(recipe):
        bench = build_recipe(recipe, "planted", data_seed=3)
        verdict = check_benchmark(
            bench,
            static_cells=((4, "hybrid"),),
            dynamic_cells=(),
            mutate=lambda compiled: apply_mutation(compiled, "drop_send"),
        )
        return None if verdict.ok else verdict.describe()

    def test_minimizes_and_persists_replayable_repro(self, tmp_path):
        recipe = generate_recipe(2, self.KNOBS)
        assert len(recipe) == 4
        failure = self._oracle(recipe)
        assert failure is not None and "static" in failure

        result = shrink_recipe(recipe, self._oracle)
        # Strictly smaller: fewer regions, or every surviving region's
        # numeric params cut below the original recipe's.
        assert len(result.recipe) < len(recipe) or result.steps
        assert len(result.recipe) >= 1
        # The minimized recipe still reproduces the find.
        assert self._oracle(result.recipe) is not None

        path = write_repro(
            tmp_path, result, handle="gen:2:planted", seed=2, knobs=self.KNOBS
        )
        assert path.parent == tmp_path
        assert path.name.startswith("repro_") and path.suffix == ".json"
        document = json.loads(path.read_text())
        assert document["schema_version"] == "1.0"
        assert document["seed"] == 2
        assert document["failure"] == result.failure
        assert document["steps"] == result.steps
        # The artifact's literal recipe replays to the same failure
        # without the generator registry.
        replayed = tuple(
            (entry["kernel"], entry["kwargs"])
            for entry in document["recipe"]
        )
        assert self._oracle(replayed) is not None
