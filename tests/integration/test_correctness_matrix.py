"""End-to-end correctness: every strategy on every core count must produce
the reference interpreter's results.  These are the tests that give the
compiler licence to be aggressive everywhere else."""

import pytest

from repro.isa import ProgramBuilder, run_program
from repro.workloads.kernels import (
    KERNELS,
    KernelContext,
)

import sys
import os

sys.path.insert(0, os.path.dirname(os.path.dirname(__file__)))
from conftest import assert_strategies_match_reference  # noqa: E402


def kernel_program(kernel_name, **kwargs):
    pb = ProgramBuilder(f"prog_{kernel_name}")
    fb = pb.function("main")
    fb.block("entry")
    ctx = KernelContext(pb=pb, fb=fb, seed=11)
    out = KERNELS[kernel_name](ctx, **kwargs)
    fb.halt()
    return pb.finish(), [out]


@pytest.mark.parametrize("kernel_name,kwargs", [
    ("ilp", {"trips": 48, "chains": 4}),
    ("doall", {"trips": 64}),
    ("reduction", {"trips": 64}),
    ("match", {"length": 96}),
    ("strand", {"trips": 32}),
    ("dswp", {"trips": 48}),
    ("serial", {"trips": 32}),
    ("call", {"trips": 16}),
    ("stencil", {"trips": 48}),
    ("histogram", {"trips": 48, "bins": 16}),
])
def test_kernel_correct_under_all_strategies(kernel_name, kwargs):
    program, outputs = kernel_program(kernel_name, **kwargs)
    assert_strategies_match_reference(program, outputs)


def test_mixed_program_correct():
    """Several kernels in sequence, sharing live state through memory."""
    pb = ProgramBuilder("mixed")
    fb = pb.function("main")
    fb.block("entry")
    ctx = KernelContext(pb=pb, fb=fb, seed=5)
    outs = [
        KERNELS["doall"](ctx, trips=48),
        KERNELS["ilp"](ctx, trips=32),
        KERNELS["strand"](ctx, trips=24),
        KERNELS["serial"](ctx, trips=16),
    ]
    fb.halt()
    program = pb.finish()
    assert_strategies_match_reference(program, outs)


def test_value_flows_between_regions():
    """A value computed in one region is consumed by the next region: the
    def-site broadcast / live-out machinery must route it."""
    pb = ProgramBuilder("flow")
    n = 32
    a = pb.alloc("a", n, init=range(1, n + 1))
    out = pb.alloc("out", n)
    fb = pb.function("main")
    fb.block("entry")
    # Region 1: reduction producing a scalar.
    acc = fb.mov(0)
    with fb.counted_loop("L1", 0, n) as i:
        fb.add(acc, fb.load(a.base, i), dest=acc)
    # Region 2: elementwise using the reduction result as a live-in.
    with fb.counted_loop("L2", 0, n) as j:
        v = fb.load(a.base, j)
        fb.store(out.base, j, fb.add(v, acc))
    fb.halt()
    program = pb.finish()
    expected_sum = n * (n + 1) // 2
    reference = run_program(program)
    assert reference.array_values(program, "out")[0] == 1 + expected_sum
    assert_strategies_match_reference(program, ["out"])


def test_branchy_control_flow():
    """Diamond control flow inside coupled code with per-path stores."""
    pb = ProgramBuilder("branchy")
    a = pb.alloc("a", 16, init=[3, 8, 1, 9, 4, 7, 2, 6, 5, 0, 11, 13, 12, 10, 15, 14])
    out = pb.alloc("out", 16)
    fb = pb.function("main")
    fb.block("entry")
    with fb.counted_loop("L", 0, 16) as i:
        v = fb.load(a.base, i)
        p = fb.cmp_ge(v, 8)
        big = fb.mul(v, 100)
        small = fb.add(v, 1000)
        picked = fb.select(p, big, small)
        fb.store(out.base, i, picked)
    fb.halt()
    assert_strategies_match_reference(pb.finish(), ["out"])


def test_two_doall_loops_back_to_back():
    """Consecutive speculative regions must not confuse the TM ordering."""
    pb = ProgramBuilder("twodoall")
    n = 40
    a = pb.alloc("a", n, init=range(n))
    b = pb.alloc("b", n)
    c = pb.alloc("c", n)
    fb = pb.function("main")
    fb.block("entry")
    with fb.counted_loop("L1", 0, n) as i:
        fb.store(b.base, i, fb.mul(fb.load(a.base, i), 2))
    with fb.counted_loop("L2", 0, n) as j:
        fb.store(c.base, j, fb.add(fb.load(b.base, j), 5))
    fb.halt()
    assert_strategies_match_reference(pb.finish(), ["b", "c"])


def test_doall_inside_outer_loop_reenters_tm_region():
    """An outer loop around a DOALL region: the TM's ordered commit wraps
    per entry and the spawn/listen protocol repeats cleanly."""
    pb = ProgramBuilder("nested")
    n = 24
    a = pb.alloc("a", n, init=[1] * n)
    fb = pb.function("main")
    fb.block("entry")
    with fb.counted_loop("outer", 0, 3):
        with fb.counted_loop("inner", 0, n) as i:
            v = fb.load(a.base, i)
            fb.store(a.base, i, fb.add(v, 1))
    fb.halt()
    program = pb.finish()
    reference = run_program(program)
    assert reference.array_values(program, "a") == [4] * n
    assert_strategies_match_reference(program, ["a"])


def test_return_value_from_main():
    from conftest import simulate

    pb = ProgramBuilder("retval")
    fb = pb.function("main")
    fb.block("entry")
    acc = fb.mov(0)
    with fb.counted_loop("L", 0, 10) as i:
        fb.add(acc, i, dest=acc)
    fb.ret(acc)
    program = pb.finish()
    machine = simulate(program, 4, "hybrid")
    assert machine.return_value == 45
