"""Whole-suite end-to-end check: every one of the 25 benchmarks compiles
for the paper's machines and produces interpreter-identical results.

The harness raises on any functional divergence, so simply running each
benchmark once under the hybrid compiler is a strong regression net over
the entire stack (profiling, selection, four partitioners, two
schedulers, communication insertion, and the cycle-level machine)."""

import pytest

from repro.harness import ExperimentRunner
from repro.workloads.suite import BENCHMARKS

_runner = ExperimentRunner(max_cycles=20_000_000)


@pytest.mark.parametrize("name", BENCHMARKS)
def test_benchmark_hybrid_four_core_correct(name):
    result = _runner.run(name, 4, "hybrid")
    assert result.correct
    assert result.cycles > 0


@pytest.mark.parametrize("name", ["gsmdecode", "179.art", "epic", "175.vpr"])
def test_benchmark_all_strategies_two_core(name):
    for strategy in ("ilp", "tlp", "llp", "hybrid"):
        result = _runner.run(name, 2, strategy)
        assert result.correct


def test_suite_hybrid_speedups_are_sane():
    """No benchmark should be catastrophically hurt by hybrid compilation
    (paper minimum: 1.15x on 4 cores; we allow a small margin)."""
    for name in BENCHMARKS:
        speedup = _runner.speedup(name, 4, "hybrid")
        assert speedup > 0.9, f"{name}: hybrid speedup {speedup:.2f}"


def test_hybrid_uses_both_modes_across_the_suite():
    coupled_heavy = decoupled_heavy = 0
    for name in BENCHMARKS:
        stats = _runner.run(name, 4, "hybrid").stats
        if stats.mode_fraction("coupled") > 0.5:
            coupled_heavy += 1
        else:
            decoupled_heavy += 1
    assert coupled_heavy >= 3
    assert decoupled_heavy >= 3
