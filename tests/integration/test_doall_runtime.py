"""Runtime behavior of speculative DOALL codegen: dynamic bounds, chunk
coverage, live-outs, and the spawn/join protocol."""

import pytest

from repro.arch import four_core, two_core
from repro.compiler import compile_program
from repro.isa import ProgramBuilder, run_program
from repro.isa.operations import Opcode
from repro.sim import VoltronMachine


def _dynamic_bound_program():
    """The loop bound is loaded from memory: chunk bounds must be computed
    at run time on every core."""
    pb = ProgramBuilder("dyn")
    meta = pb.alloc("meta", 1, init=[37])  # bound lives in memory
    a = pb.alloc("a", 64, init=range(64))
    o = pb.alloc("o", 64)
    fb = pb.function("main")
    fb.block("entry")
    bound = fb.load(meta.base, 0)
    with fb.counted_loop("L", 0, bound) as i:
        fb.store(o.base, i, fb.add(fb.load(a.base, i), 7))
    fb.halt()
    return pb.finish()


class TestDynamicBounds:
    def test_dynamic_bound_doall_correct(self):
        program = _dynamic_bound_program()
        compiled = compile_program(program, 4, "llp")
        strategies = {
            e["strategy"] for e in compiled.attrs["regions"].values()
        }
        assert "doall" in strategies  # the dynamic bound was accepted
        reference = run_program(program)
        machine = VoltronMachine(compiled, four_core())
        stats = machine.run()
        assert machine.array_values("o") == reference.array_values(program, "o")
        assert stats.tx_commits == 4

    def test_dynamic_bound_untouched_tail(self):
        program = _dynamic_bound_program()
        compiled = compile_program(program, 4, "llp")
        machine = VoltronMachine(compiled, four_core())
        machine.run()
        # Iterations beyond the dynamic bound (37) must not be touched.
        assert machine.array_values("o")[37:] == [0] * (64 - 37)

    @pytest.mark.parametrize("bound", [9, 16, 23, 31])
    def test_various_dynamic_bounds_via_arg(self, bound):
        pb = ProgramBuilder("dynarg")
        a = pb.alloc("a", 64, init=range(64))
        o = pb.alloc("o", 64)
        fb = pb.function("main", n_params=1)
        fb.block("entry")
        (n,) = fb.function.params
        with fb.counted_loop("L", 0, n) as i:
            fb.store(o.base, i, fb.mul(fb.load(a.base, i), 2))
        fb.halt()
        program = pb.finish()
        # Profile with a bound big enough to clear the trip threshold.
        compiled = compile_program(program, 4, "llp", profile_args=(32,))
        reference = run_program(program, (bound,))
        machine = VoltronMachine(compiled, four_core(), args=(bound,))
        machine.run()
        assert machine.array_values("o") == reference.array_values(
            program, "o"
        )


class TestLiveOuts:
    def test_accumulator_and_induction_usable_after_loop(self):
        pb = ProgramBuilder("liveout")
        n = 32
        a = pb.alloc("a", n, init=range(1, n + 1))
        o = pb.alloc("o", 4)
        fb = pb.function("main")
        fb.block("entry")
        acc = fb.mov(100)
        with fb.counted_loop("L", 0, n) as i:
            fb.add(acc, fb.load(a.base, i), dest=acc)
        # Both the reduction result and the final induction value are
        # consumed after the region, on whatever cores the fabric picks.
        fb.store(o.base, 0, acc)
        fb.store(o.base, 1, i)
        fb.store(o.base, 2, fb.mul(acc, i))
        fb.halt()
        program = pb.finish()
        reference = run_program(program)
        want = reference.array_values(program, "o")
        assert want[0] == 100 + n * (n + 1) // 2
        assert want[1] == n
        for n_cores in (2, 4):
            for strategy in ("llp", "hybrid"):
                compiled = compile_program(program, n_cores, strategy)
                machine = VoltronMachine(
                    compiled, four_core() if n_cores == 4 else two_core()
                )
                machine.run()
                assert machine.array_values("o") == want, (n_cores, strategy)

    def test_strand_region_liveout_reaches_fabric(self):
        pb = ProgramBuilder("strandout")
        from repro.workloads.kernels import KernelContext, strand_kernel

        fb = pb.function("main")
        fb.block("entry")
        ctx = KernelContext(pb=pb, fb=fb, seed=5)
        out = strand_kernel(ctx, trips=32)
        # The kernel's accumulator is stored by the kernel itself; chain an
        # extra post-region computation on the stored value.
        final = pb.alloc("final", 1)
        sym = pb.program.array(out)
        v = fb.load(sym.base, 0)
        fb.store(final.base, 0, fb.add(v, 1))
        fb.halt()
        program = pb.finish()
        reference = run_program(program)
        compiled = compile_program(program, 4, "tlp")
        machine = VoltronMachine(compiled, four_core())
        machine.run()
        assert machine.array_values("final") == reference.array_values(
            program, "final"
        )


class TestSpawnJoinProtocol:
    def test_workers_listen_then_sleep_then_release(self):
        program = _dynamic_bound_program()
        compiled = compile_program(program, 4, "llp")
        machine = VoltronMachine(compiled, four_core())
        stats = machine.run()
        # Workers idled while listening, and every spawn found a listener.
        assert stats.spawns == 3
        idle = sum(stats.cores[c].stalls["idle"] for c in (1, 2, 3))
        assert idle > 0
        # The network drained completely.
        assert machine.network.quiescent()
