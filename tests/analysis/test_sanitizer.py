"""Dynamic race sanitizer: zero-cost, zero-perturbation, and loud
exactly when an execution exhibits an unordered cross-core conflict."""

from __future__ import annotations

import pytest

from repro.analysis import RaceSanitizer
from repro.api import compile_benchmark
from repro.arch.config import mesh
from repro.sim.faults import FaultConfig
from repro.sim.machine import VoltronMachine



def _run(compiled, sanitizer=None):
    machine = VoltronMachine(
        compiled, mesh(4), max_cycles=50_000_000, sanitizer=sanitizer
    )
    machine.run()
    return machine


@pytest.mark.parametrize(
    "bench,strategy",
    [("rawcaudio", "tlp"), ("gsmdecode", "hybrid"), ("052.alvinn", "llp")],
)
def test_sanitized_run_is_bit_identical(bench, strategy):
    plain = _run(compile_benchmark(bench, 4, strategy))
    sanitizer = RaceSanitizer()
    sanitized = _run(compile_benchmark(bench, 4, strategy), sanitizer)
    assert sanitized.memory.as_dict() == plain.memory.as_dict()
    assert sanitized.stats.to_dict() == plain.stats.to_dict()
    # ... and the compiler's output really is race-free at runtime.
    assert sanitizer.findings == []
    assert sanitizer.checked_accesses > 0


def test_synced_fixture_runs_clean(tlp_cell, inject_sync):
    inject_sync(tlp_cell, with_sync=True)
    sanitizer = RaceSanitizer()
    machine = _run(tlp_cell, sanitizer)
    assert sanitizer.findings == []
    assert machine.network.quiescent()


def test_unsynced_fixture_races(tlp_cell, inject_sync, fixture_addr):
    name, label = inject_sync(tlp_cell, with_sync=False)
    sanitizer = RaceSanitizer()
    _run(tlp_cell, sanitizer)
    races = [f for f in sanitizer.findings if f.kind == "dynamic-race"]
    assert races
    finding = races[0]
    assert finding.function == name
    assert finding.block == label
    assert finding.core in (0, 1)
    assert str(fixture_addr) in finding.message


def test_destructive_faults_are_rejected():
    """Corrupted/dropped messages would make every happens-before edge a
    lie; the sanitizer refuses to attach rather than report garbage."""
    compiled = compile_benchmark("rawcaudio", 4, "tlp")
    faults = FaultConfig(seed=3, profile="destructive", drop_rate=0.01)
    with pytest.raises(ValueError, match="destructive"):
        VoltronMachine(
            compiled, mesh(4), faults=faults, sanitizer=RaceSanitizer()
        )


def test_timing_faults_are_fine():
    """Latency-only fault runs keep architectural behaviour, so the
    sanitizer works under them (and still sees no races)."""
    compiled = compile_benchmark("rawcaudio", 4, "tlp")
    faults = FaultConfig(seed=3, rate=0.01)
    sanitizer = RaceSanitizer()
    machine = VoltronMachine(
        compiled, mesh(4), faults=faults, sanitizer=sanitizer
    )
    machine.run()
    assert sanitizer.findings == []
    assert sanitizer.checked_accesses > 0


def test_finding_cap_bounds_memory(tlp_cell, inject_sync):
    inject_sync(tlp_cell, with_sync=False)
    sanitizer = RaceSanitizer(max_findings=1)
    _run(tlp_cell, sanitizer)
    assert len(sanitizer.findings) <= 1
