"""Mutation harness: every classic miscompile must be caught, with a
diagnostic naming the mutated region and core."""

from __future__ import annotations

import pytest

from repro.analysis import MUTATIONS, apply_mutation, verify_compiled
from repro.api import compile_benchmark
from repro.arch.config import mesh


#: Each mutation paired with a cell whose region mix contains an
#: applicable site (queue ops for the SEND/RECV mutations, coupled wires
#: for misalign_put, mode edges for drop_mode_switch, a DOALL region for
#: drop_tx_commit).
CELLS = {
    "drop_send": ("rawcaudio", "tlp"),
    "drop_recv": ("rawcaudio", "tlp"),
    "retarget_send": ("rawcaudio", "tlp"),
    "duplicate_send": ("rawcaudio", "tlp"),
    "misalign_put": ("rawcaudio", "ilp"),
    "drop_sync_pair": ("rawcaudio", "tlp"),
    "drop_mode_switch": ("rawcaudio", "tlp"),
    "drop_tx_commit": ("052.alvinn", "llp"),
}


def _mutated_cell(name, inject_sync):
    benchmark, strategy = CELLS[name]
    compiled = compile_benchmark(benchmark, 4, strategy)
    if name == "drop_sync_pair":
        # No benchmark cell carries a mem-sync pair (eBUG keeps
        # compiler-visible memory dependences on one core), so give the
        # mutation a real pair to delete.
        inject_sync(compiled, with_sync=True)
    return compiled


def test_registry_is_the_documented_set():
    assert set(MUTATIONS) == set(CELLS)
    assert len(MUTATIONS) >= 6


@pytest.mark.parametrize("name", sorted(CELLS))
def test_mutation_is_caught_and_located(name, inject_sync):
    compiled = _mutated_cell(name, inject_sync)
    record = apply_mutation(compiled, name)
    assert record is not None, f"{name}: no applicable site in cell"
    report = verify_compiled(compiled, mesh(4))
    assert not report.ok, f"{name}: verifier saw nothing"
    matching = [f for f in report.findings if record.matches(f)]
    assert matching, (
        f"{name}: no finding matched {record.expect_kinds} in region "
        f"{record.region} on cores {record.expect_cores}; got: "
        + "; ".join(f.render() for f in report.findings[:5])
    )
    # record.matches already pins region and core; the rendered
    # diagnostic must carry the location for a human too.
    finding = matching[0]
    assert finding.function in finding.render()
    assert f"core={finding.core}" in finding.render()


def test_mutation_without_site_returns_none():
    compiled = compile_benchmark("rawcaudio", 4, "tlp")
    # A queue-mode cell has no DOALL region to break.
    assert apply_mutation(compiled, "drop_tx_commit") is None


def test_clean_cell_stays_clean_without_mutation():
    """Control: the cells used above verify clean before mutation."""
    for benchmark, strategy in set(CELLS.values()):
        compiled = compile_benchmark(benchmark, 4, strategy)
        report = verify_compiled(compiled, mesh(4))
        assert report.ok, report.render()
