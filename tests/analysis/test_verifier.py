"""Static verifier: clean on real cells, loud on broken ones."""

from __future__ import annotations

import pytest

import repro
from repro.analysis import merge_reports, verify_compiled
from repro.analysis.findings import Finding, match_suppression
from repro.api import compile_benchmark
from repro.arch.config import mesh, single_core

#: A slice of the suite covering every region flavour (ILP-heavy,
#: queue-heavy TLP, DOALL-carrying LLP, and the hybrid mixes); the full
#: 25-benchmark sweep runs in CI via ``repro.harness.cli verify``.
SAMPLE = ("rawcaudio", "gsmdecode", "052.alvinn", "epic", "171.swim")

GRID = [(1, "baseline")] + [
    (n, s) for n in (2, 4) for s in ("ilp", "tlp", "llp")
]


def _config(cores):
    return single_core() if cores == 1 else mesh(cores)


@pytest.mark.parametrize("bench", SAMPLE)
@pytest.mark.parametrize("cores,strategy", GRID)
def test_grid_cells_verify_clean(bench, cores, strategy):
    compiled = compile_benchmark(bench, cores, strategy)
    report = verify_compiled(compiled, _config(cores))
    assert report.ok, report.render()
    assert report.checked["blocks"] > 0


@pytest.mark.parametrize("bench", SAMPLE)
def test_hybrid_cells_verify_clean(bench):
    compiled = compile_benchmark(bench, 4, "hybrid")
    report = verify_compiled(compiled, mesh(4))
    assert report.ok, report.render()


def test_checks_do_real_work():
    """The clean verdicts above are meaningless unless every check ran
    over real sites; the counters prove coverage."""
    totals = {}
    for benchmark, strategy in [
        ("rawcaudio", "ilp"),
        ("rawcaudio", "tlp"),
        ("052.alvinn", "llp"),
        ("gsmdecode", "hybrid"),
    ]:
        compiled = compile_benchmark(benchmark, 4, strategy)
        report = verify_compiled(compiled, mesh(4))
        for key, value in report.checked.items():
            totals[key] = totals.get(key, 0) + value
    assert totals["align_groups"] > 0  # coupled wires checked
    assert totals["queue_ops"] > 0  # decoupled channels checked
    assert totals["mode_edges"] > 0  # mode barriers checked
    assert totals["doall_regions"] > 0  # TM brackets checked
    assert totals["routed_regs"] > 0  # value routing checked


class TestSyncPairFixture:
    def test_synced_conflict_is_clean(self, tlp_cell, inject_sync):
        inject_sync(tlp_cell, with_sync=True)
        report = verify_compiled(tlp_cell, mesh(4))
        assert report.ok, report.render()
        assert report.checked["sync_pairs"] >= 1
        assert report.checked["sync_mem_ops"] >= 2

    def test_unsynced_conflict_is_a_race(self, tlp_cell, inject_sync):
        name, label = inject_sync(tlp_cell, with_sync=False)
        report = verify_compiled(tlp_cell, mesh(4))
        races = [f for f in report.findings if f.kind == "missing-sync"]
        assert races, report.render()
        finding = races[0]
        assert finding.function == name
        assert finding.block == label
        assert finding.core in (0, 1)
        # The diagnostic names both endpoints of the dependence.
        assert "core 0" in finding.message and "core 1" in finding.message


class TestSuppressions:
    def test_suppressed_finding_keeps_report_ok(self, tlp_cell, inject_sync):
        inject_sync(tlp_cell, with_sync=False)
        report = verify_compiled(tlp_cell, mesh(4), ("missing-sync",))
        assert report.ok
        assert any(f.suppressed for f in report.findings)
        assert not report.active_findings()

    def test_scoped_patterns(self):
        finding = Finding(
            kind="orphan-send",
            function="main",
            block="ilp_1",
            region=1,
            core=2,
            message="",
        )
        assert match_suppression(finding, ["orphan-send"])
        assert match_suppression(finding, ["orphan-send:main"])
        assert match_suppression(finding, ["orphan-send:main:ilp_1"])
        assert not match_suppression(finding, ["orphan-send:main:other"])
        assert not match_suppression(finding, ["orphan-recv"])


class TestReportSchema:
    def test_to_dict_round_trip(self, tlp_cell):
        report = verify_compiled(tlp_cell, mesh(4))
        payload = report.to_dict()
        assert payload["ok"] is True
        assert payload["cores"] == 4
        assert payload["checked"]["blocks"] > 0

    def test_merge_reports(self):
        reports = []
        for cores, strategy in [(1, "baseline"), (2, "tlp")]:
            compiled = compile_benchmark("rawcaudio", cores, strategy)
            report = verify_compiled(compiled, _config(cores))
            report.benchmark = "rawcaudio"
            report.strategy = strategy
            reports.append(report)
        merged = merge_reports(reports)
        assert merged["schema"] == 1
        assert merged["total_cells"] == 2
        assert merged["ok"] is True
        assert len(merged["cells"]) == 2


class TestApiFacade:
    def test_verify_benchmark_static(self):
        report = repro.verify_benchmark("rawcaudio", 2, "tlp")
        assert report.ok, report.render()
        assert report.benchmark == "rawcaudio"

    def test_verify_benchmark_dynamic(self):
        report = repro.verify_benchmark("rawcaudio", 2, "tlp", dynamic=True)
        assert report.ok, report.render()
        assert report.checked["dynamic_accesses"] > 0
