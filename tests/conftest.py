"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import pytest

from repro.arch import MachineConfig, mesh, single_core
from repro.compiler import VoltronCompiler, compile_program
from repro.isa import ProgramBuilder, Program, run_program
from repro.sim import VoltronMachine


def build_square_sum(n: int = 16) -> Tuple[Program, str]:
    """Canonical little program: out[i] = a[i]^2, out[0] = sum of squares."""
    pb = ProgramBuilder("square_sum")
    a = pb.alloc("a", n, init=range(n))
    out = pb.alloc("out", n)
    fb = pb.function("main")
    fb.block("entry")
    total = fb.mov(0)
    with fb.counted_loop("L1", 0, n) as i:
        v = fb.load(a.base, i)
        sq = fb.mul(v, v)
        fb.store(out.base, i, sq)
        fb.add(total, sq, dest=total)
    fb.store(out.base, 0, total)
    fb.halt()
    return pb.finish(), "out"


def simulate(
    program: Program,
    n_cores: int,
    strategy: str,
    args: Tuple = (),
    max_cycles: int = 3_000_000,
) -> VoltronMachine:
    compiled = compile_program(program, n_cores, strategy, profile_args=args)
    config = single_core() if n_cores == 1 else mesh(n_cores)
    machine = VoltronMachine(compiled, config, max_cycles=max_cycles, args=args)
    machine.run()
    return machine


def assert_strategies_match_reference(
    program: Program,
    arrays: Sequence[str],
    cores_strategies: Iterable[Tuple[int, str]] = (
        (1, "baseline"),
        (2, "ilp"),
        (2, "tlp"),
        (2, "llp"),
        (2, "hybrid"),
        (4, "ilp"),
        (4, "tlp"),
        (4, "llp"),
        (4, "hybrid"),
    ),
    args: Tuple = (),
) -> Dict[Tuple[int, str], int]:
    """Simulate under every (cores, strategy) pair and compare each output
    array against the reference interpreter.  Returns cycle counts."""
    reference = run_program(program, args)
    expected = {name: reference.array_values(program, name) for name in arrays}
    cycles = {}
    for n_cores, strategy in cores_strategies:
        machine = simulate(program, n_cores, strategy, args=args)
        for name, values in expected.items():
            got = machine.array_values(name)
            assert got == values, (
                f"{n_cores}-core {strategy}: array {name} mismatch: "
                f"{got[:8]} != {values[:8]}"
            )
        cycles[(n_cores, strategy)] = machine.stats.cycles
    return cycles


@pytest.fixture
def square_sum():
    return build_square_sum()


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the golden machine-stats files under tests/sim/golden "
        "instead of comparing against them",
    )


@pytest.fixture
def update_golden(request) -> bool:
    return request.config.getoption("--update-golden")


# ---- voltlint fixtures (tests/analysis) ------------------------------------
#
# The compiler deliberately never splits compiler-visible memory
# dependences across cores (eBUG's memory_dep_weight keeps conflicting
# accesses co-located), so no benchmark cell exercises the memory-sync
# pair machinery end to end.  inject_sync_fixture manufactures that
# situation by hand: it appends a cross-core STORE/LOAD conflict to a
# decoupled block of a real compiled cell, with or without the
# memory_sync_pair ordering it.  Editing compiled streams pre-run is
# safe -- CoreBlock.decoded is only materialized by the simulator.

#: Word address used by the injected conflict; far above the suite's
#: static arrays so the extra store cannot perturb program results.
FIXTURE_ADDR = 1 << 20


def _shared_decoupled_block(compiled) -> Tuple[str, str]:
    """(function, label) of a decoupled, non-speculative block that both
    core 0 and core 1 execute -- the injection site."""
    from repro.isa.operations import Opcode

    for name, f0 in compiled.streams[0].items():
        f1 = compiled.streams[1].get(name)
        if f1 is None:
            continue
        for label in f0.block_order:
            b0 = f0.blocks[label]
            b1 = f1.blocks.get(label)
            if b1 is None or b0.mode != "decoupled":
                continue
            if b0.taken == label or b0.fall == label:
                continue  # self-loops would add a loop-carried WAR
            if any(
                op is not None
                and op.opcode in (Opcode.TX_BEGIN, Opcode.TX_COMMIT)
                for op in b0.slots + b1.slots
            ):
                continue
            return name, label
    raise AssertionError("no decoupled block shared by cores 0 and 1")


def inject_sync_fixture(compiled, with_sync: bool = True) -> Tuple[str, str]:
    """Append a core-0 STORE / core-1 LOAD of the same address to a
    decoupled block; with ``with_sync`` the pair is ordered by a
    ``memory_sync_pair``, without it the accesses race.  Returns the
    (function, label) injection site."""
    from repro.compiler.comm import memory_sync_pair
    from repro.isa.operations import Imm, Opcode, make_op

    name, label = _shared_decoupled_block(compiled)
    b0 = compiled.streams[0][name].blocks[label]
    b1 = compiled.streams[1][name].blocks[label]
    regs = compiled.program.functions[name].regs
    store = make_op(Opcode.STORE, [], [Imm(FIXTURE_ADDR), Imm(0), Imm(7)])
    store.core = 0
    load = make_op(Opcode.LOAD, [regs.gpr()], [Imm(FIXTURE_ADDR), Imm(0)])
    load.core = 1
    b0.slots.insert(0, store)
    if with_sync:
        send, recv = memory_sync_pair(0, 1, regs)
        # A distinct tag keeps the token off the compiler's untagged
        # transfer channel (the runtime RECV CAM matches on tag).
        send.attrs["tag"] = "fixture_sync"
        recv.attrs["tag"] = "fixture_sync"
        b0.slots.insert(1, send)
        b1.slots.insert(0, recv)
        b1.slots.insert(1, load)
    else:
        b1.slots.insert(0, load)
    return name, label


@pytest.fixture
def tlp_cell():
    """A fresh 4-core TLP compile of rawcaudio (cheap, queue-heavy)."""
    from repro.api import compile_benchmark

    return compile_benchmark("rawcaudio", 4, "tlp")


@pytest.fixture
def inject_sync():
    """The injection helper, as a fixture (tests are not a package)."""
    return inject_sync_fixture


@pytest.fixture
def fixture_addr():
    return FIXTURE_ADDR
