"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import pytest

from repro.arch import MachineConfig, mesh, single_core
from repro.compiler import VoltronCompiler, compile_program
from repro.isa import ProgramBuilder, Program, run_program
from repro.sim import VoltronMachine


def build_square_sum(n: int = 16) -> Tuple[Program, str]:
    """Canonical little program: out[i] = a[i]^2, out[0] = sum of squares."""
    pb = ProgramBuilder("square_sum")
    a = pb.alloc("a", n, init=range(n))
    out = pb.alloc("out", n)
    fb = pb.function("main")
    fb.block("entry")
    total = fb.mov(0)
    with fb.counted_loop("L1", 0, n) as i:
        v = fb.load(a.base, i)
        sq = fb.mul(v, v)
        fb.store(out.base, i, sq)
        fb.add(total, sq, dest=total)
    fb.store(out.base, 0, total)
    fb.halt()
    return pb.finish(), "out"


def simulate(
    program: Program,
    n_cores: int,
    strategy: str,
    args: Tuple = (),
    max_cycles: int = 3_000_000,
) -> VoltronMachine:
    compiled = compile_program(program, n_cores, strategy, profile_args=args)
    config = single_core() if n_cores == 1 else mesh(n_cores)
    machine = VoltronMachine(compiled, config, max_cycles=max_cycles, args=args)
    machine.run()
    return machine


def assert_strategies_match_reference(
    program: Program,
    arrays: Sequence[str],
    cores_strategies: Iterable[Tuple[int, str]] = (
        (1, "baseline"),
        (2, "ilp"),
        (2, "tlp"),
        (2, "llp"),
        (2, "hybrid"),
        (4, "ilp"),
        (4, "tlp"),
        (4, "llp"),
        (4, "hybrid"),
    ),
    args: Tuple = (),
) -> Dict[Tuple[int, str], int]:
    """Simulate under every (cores, strategy) pair and compare each output
    array against the reference interpreter.  Returns cycle counts."""
    reference = run_program(program, args)
    expected = {name: reference.array_values(program, name) for name in arrays}
    cycles = {}
    for n_cores, strategy in cores_strategies:
        machine = simulate(program, n_cores, strategy, args=args)
        for name, values in expected.items():
            got = machine.array_values(name)
            assert got == values, (
                f"{n_cores}-core {strategy}: array {name} mismatch: "
                f"{got[:8]} != {values[:8]}"
            )
        cycles[(n_cores, strategy)] = machine.stats.cycles
    return cycles


@pytest.fixture
def square_sum():
    return build_square_sum()


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the golden machine-stats files under tests/sim/golden "
        "instead of comparing against them",
    )


@pytest.fixture
def update_golden(request) -> bool:
    return request.config.getoption("--update-golden")
