"""Unit tests for the per-core machine-code container."""

import pytest

from repro.isa.machinecode import CompiledProgram, CoreBlock, CoreFunction
from repro.isa.operations import Imm, Opcode, Reg, RegFile, make_op
from repro.isa.program import Function, Program


def _program():
    program = Program()
    fn = Function("main")
    fn.add_block("entry")
    program.add_function(fn)
    return program


def _compiled(n_cores=2, blocks_per_core=None):
    program = _program()
    compiled = CompiledProgram(program, n_cores)
    for core in range(n_cores):
        cf = CoreFunction("main", "entry")
        for label, slots in (blocks_per_core or {}).get(
            core, {"entry": [make_op(Opcode.HALT)]}
        ).items():
            cf.add_block(CoreBlock(label, slots=list(slots)))
        compiled.add_function(core, cf)
    return compiled


class TestCoreBlock:
    def test_len_counts_slots_including_nops(self):
        block = CoreBlock("b", slots=[None, make_op(Opcode.NOP), None])
        assert len(block) == 3
        assert len(list(block.ops())) == 1

    def test_op_addr_offsets_from_base(self):
        block = CoreBlock("b", slots=[None] * 4)
        block.base_addr = 100
        assert block.op_addr(0) == 100
        assert block.op_addr(3) == 103


class TestCoreFunction:
    def test_duplicate_block_rejected(self):
        cf = CoreFunction("main", "entry")
        cf.add_block(CoreBlock("entry"))
        with pytest.raises(ValueError):
            cf.add_block(CoreBlock("entry"))

    def test_ordered_blocks_preserve_insertion(self):
        cf = CoreFunction("main", "a")
        for label in ("a", "b", "c"):
            cf.add_block(CoreBlock(label))
        assert [b.label for b in cf.ordered_blocks()] == ["a", "b", "c"]


class TestCompiledProgram:
    def test_assign_addresses_are_disjoint_within_core(self):
        compiled = _compiled(
            blocks_per_core={
                0: {
                    "entry": [make_op(Opcode.NOP)] * 3,
                    "next": [make_op(Opcode.HALT)],
                },
                1: {"entry": [make_op(Opcode.HALT)]},
            }
        )
        compiled.assign_addresses()
        cf = compiled.streams[0]["main"]
        assert cf.block("entry").base_addr == 0
        assert cf.block("next").base_addr == 3

    def test_validate_requires_all_functions_on_all_cores(self):
        program = _program()
        compiled = CompiledProgram(program, 2)
        cf = CoreFunction("main", "entry")
        cf.add_block(CoreBlock("entry", slots=[make_op(Opcode.HALT)]))
        compiled.add_function(0, cf)
        with pytest.raises(ValueError, match="missing functions"):
            compiled.validate()

    def test_validate_rejects_unknown_successor(self):
        compiled = _compiled()
        compiled.streams[0]["main"].block("entry").taken = "ghost"
        with pytest.raises(ValueError, match="unknown block"):
            compiled.validate()

    def test_validate_rejects_unknown_pbr_target(self):
        program = _program()
        compiled = CompiledProgram(program, 1)
        cf = CoreFunction("main", "entry")
        pbr = make_op(Opcode.PBR, [Reg(RegFile.BTR, 0)], [], target="ghost")
        cf.add_block(CoreBlock("entry", slots=[pbr, make_op(Opcode.HALT)]))
        compiled.add_function(0, cf)
        with pytest.raises(ValueError, match="PBR to unknown"):
            compiled.validate()

    def test_static_op_count_ignores_padding(self):
        compiled = _compiled(
            blocks_per_core={
                0: {"entry": [None, make_op(Opcode.NOP), make_op(Opcode.HALT)]},
                1: {"entry": [make_op(Opcode.HALT)]},
            }
        )
        assert compiled.static_op_count() == 3

    def test_duplicate_function_on_core_rejected(self):
        compiled = _compiled()
        with pytest.raises(ValueError):
            compiled.add_function(0, CoreFunction("main", "entry"))

    def test_describe_lists_every_core(self):
        text = _compiled().describe()
        assert "=== core 0 ===" in text and "=== core 1 ===" in text
        assert "halt" in text
