"""Unit tests for blocks, functions, programs, and validation."""

import pytest

from repro.isa.operations import Imm, Opcode, Reg, RegFile, make_op
from repro.isa.program import ArraySymbol, BasicBlock, Function, Program


def _branch(function, target):
    btr = function.regs.btr()
    return [
        make_op(Opcode.PBR, [btr], [], target=target),
        make_op(Opcode.BR, [], [btr]),
    ]


class TestBasicBlock:
    def test_terminator_found(self):
        block = BasicBlock("b")
        block.append(make_op(Opcode.ADD, [Reg(RegFile.GPR, 0)], [Imm(1), Imm(2)]))
        br = block.append(make_op(Opcode.BR, [], [Reg(RegFile.BTR, 0)]))
        assert block.terminator() is br

    def test_call_is_not_a_block_terminator(self):
        # CALL transfers control but resumes mid-block; ops may follow it.
        block = BasicBlock("b")
        block.append(make_op(Opcode.CALL, [], [], function="f"))
        block.append(make_op(Opcode.NOP))
        assert block.terminator() is None

    def test_successors_dedupe(self):
        block = BasicBlock("b")
        block.taken = "x"
        block.fall = "x"
        assert block.successors() == ("x",)

    def test_non_control_ops(self):
        block = BasicBlock("b")
        add = block.append(
            make_op(Opcode.ADD, [Reg(RegFile.GPR, 0)], [Imm(1), Imm(2)])
        )
        block.append(make_op(Opcode.BR, [], [Reg(RegFile.BTR, 0)]))
        assert block.non_control_ops() == [add]


class TestFunction:
    def test_entry_is_first_block(self):
        fn = Function("f")
        fn.add_block("a")
        fn.add_block("b")
        assert fn.entry == "a"

    def test_duplicate_block_rejected(self):
        fn = Function("f")
        fn.add_block("a")
        with pytest.raises(ValueError):
            fn.add_block("a")

    def test_predecessors(self):
        fn = Function("f")
        a = fn.add_block("a")
        fn.add_block("b")
        fn.add_block("c")
        a.taken = "c"
        a.fall = "b"
        for op in _branch(fn, "c"):
            a.append(op)
        preds = fn.predecessors()
        assert preds["c"] == {"a"}
        assert preds["b"] == {"a"}
        assert preds["a"] == set()

    def test_validate_rejects_unknown_target(self):
        fn = Function("f")
        a = fn.add_block("a")
        a.taken = "missing"
        for op in _branch(fn, "missing"):
            a.append(op)
        with pytest.raises(ValueError, match="unknown block"):
            fn.validate()

    def test_validate_rejects_ops_after_terminator(self):
        fn = Function("f")
        a = fn.add_block("a")
        a.append(make_op(Opcode.HALT))
        a.append(make_op(Opcode.NOP))
        with pytest.raises(ValueError, match="after its terminator"):
            fn.validate()

    def test_validate_rejects_taken_without_branch(self):
        fn = Function("f")
        a = fn.add_block("a")
        a.taken = "a"
        with pytest.raises(ValueError, match="no branch"):
            fn.validate()


class TestProgram:
    def test_array_allocation_is_line_aligned(self):
        program = Program()
        first = program.alloc_array("a", 5)
        second = program.alloc_array("b", 3)
        assert first.base % 8 == 0
        assert second.base % 8 == 0
        assert second.base >= first.base + first.size

    def test_array_initializer_fills_memory(self):
        program = Program()
        symbol = program.alloc_array("a", 4, init=[9, 8, 7, 6])
        for i, value in enumerate([9, 8, 7, 6]):
            assert program.initial_memory[symbol.base + i] == value

    def test_oversize_initializer_rejected(self):
        program = Program()
        with pytest.raises(ValueError):
            program.alloc_array("a", 2, init=[1, 2, 3])

    def test_array_bounds_check(self):
        symbol = ArraySymbol("a", 0, 4)
        assert symbol.addr(3) == 3
        with pytest.raises(IndexError):
            symbol.addr(4)

    def test_validate_requires_entry(self):
        program = Program(entry="main")
        with pytest.raises(ValueError, match="entry"):
            program.validate()

    def test_validate_rejects_unknown_callee(self):
        program = Program()
        fn = Function("main")
        block = fn.add_block("entry")
        block.append(make_op(Opcode.CALL, [], [], function="ghost"))
        block.append(make_op(Opcode.HALT))
        program.add_function(fn)
        with pytest.raises(ValueError, match="unknown function"):
            program.validate()

    def test_functions_share_the_program_allocator(self):
        program = Program()
        f = Function("main")
        g = Function("g")
        program.add_function(f)
        program.add_function(g)
        a = f.regs.gpr()
        b = g.regs.gpr()
        assert a != b
