"""Unit tests for the fluent IR builder."""

import pytest

from repro.isa import ProgramBuilder, run_program
from repro.isa.builder import as_operand
from repro.isa.operations import Imm, Opcode, Reg, RegFile


class TestAsOperand:
    def test_wraps_numbers(self):
        assert as_operand(3) == Imm(3)
        assert as_operand(2.5) == Imm(2.5)

    def test_bool_becomes_int_imm(self):
        assert as_operand(True) == Imm(1)

    def test_passes_registers_through(self):
        r = Reg(RegFile.GPR, 0)
        assert as_operand(r) is r

    def test_rejects_strings(self):
        with pytest.raises(TypeError):
            as_operand("L1")


class TestStraightLine:
    def test_arith_chain_runs(self):
        pb = ProgramBuilder("t")
        fb = pb.function("main")
        fb.block("entry")
        a = fb.mov(6)
        b = fb.mul(a, 7)
        fb.ret(b)
        result = run_program(pb.finish())
        assert result.return_value == 42

    def test_dest_reuse(self):
        pb = ProgramBuilder("t")
        fb = pb.function("main")
        fb.block("entry")
        acc = fb.mov(1)
        fb.add(acc, 10, dest=acc)
        fb.add(acc, 100, dest=acc)
        fb.ret(acc)
        assert run_program(pb.finish()).return_value == 111

    def test_float_ops_allocate_fprs(self):
        pb = ProgramBuilder("t")
        fb = pb.function("main")
        fb.block("entry")
        x = fb.fmov(1.5)
        assert x.file is RegFile.FPR
        y = fb.fmul(x, 2.0)
        assert y.file is RegFile.FPR
        fb.ret(y)
        assert run_program(pb.finish()).return_value == 3.0

    def test_compare_allocates_pr(self):
        pb = ProgramBuilder("t")
        fb = pb.function("main")
        fb.block("entry")
        p = fb.cmp_lt(1, 2)
        assert p.file is RegFile.PR
        v = fb.select(p, 10, 20)
        fb.ret(v)
        assert run_program(pb.finish()).return_value == 10

    def test_conversions(self):
        pb = ProgramBuilder("t")
        fb = pb.function("main")
        fb.block("entry")
        f = fb.itof(7)
        i = fb.ftoi(fb.fdiv(f, 2.0))
        fb.ret(i)
        assert run_program(pb.finish()).return_value == 3


class TestControlFlow:
    def test_branch_if_sets_edges(self):
        pb = ProgramBuilder("t")
        fb = pb.function("main")
        entry = fb.block("entry")
        p = fb.cmp_lt(1, 2)
        fb.branch_if(p, "then")
        fall = fb.block("else")
        fb.ret(0)
        fb.block("then")
        fb.ret(1)
        assert entry.taken == "then"
        assert entry.fall == "else"
        assert run_program(pb.finish()).return_value == 1

    def test_jump_has_no_fall(self):
        pb = ProgramBuilder("t")
        fb = pb.function("main")
        entry = fb.block("entry")
        fb.jump("end")
        fb.block("skipped")
        fb.ret(0)
        fb.block("end")
        fb.ret(9)
        assert entry.fall is None
        assert run_program(pb.finish()).return_value == 9

    def test_counted_loop_shape(self):
        pb = ProgramBuilder("t")
        fb = pb.function("main")
        fb.block("entry")
        acc = fb.mov(0)
        with fb.counted_loop("L", 0, 5) as i:
            fb.add(acc, i, dest=acc)
        fb.ret(acc)
        program = pb.finish()
        body = program.main().block("L")
        assert body.taken == "L"
        assert body.fall is not None
        assert body.attrs["loop_step"] == 1
        assert run_program(program).return_value == 0 + 1 + 2 + 3 + 4

    def test_counted_loop_down(self):
        pb = ProgramBuilder("t")
        fb = pb.function("main")
        fb.block("entry")
        acc = fb.mov(0)
        with fb.counted_loop("L", 5, 0, down=True) as i:
            fb.add(acc, i, dest=acc)
        fb.ret(acc)
        assert run_program(pb.finish()).return_value == 5 + 4 + 3 + 2 + 1

    def test_counted_loop_step(self):
        pb = ProgramBuilder("t")
        fb = pb.function("main")
        fb.block("entry")
        acc = fb.mov(0)
        with fb.counted_loop("L", 0, 10, step=3) as i:
            fb.add(acc, i, dest=acc)
        fb.ret(acc)
        assert run_program(pb.finish()).return_value == 0 + 3 + 6 + 9

    def test_nested_loops(self):
        pb = ProgramBuilder("t")
        fb = pb.function("main")
        fb.block("entry")
        acc = fb.mov(0)
        with fb.counted_loop("outer", 0, 3):
            with fb.counted_loop("inner", 0, 4):
                fb.add(acc, 1, dest=acc)
        fb.ret(acc)
        assert run_program(pb.finish()).return_value == 12

    def test_counted_loop_is_do_while(self):
        # The canonical loop tests the condition at the latch: the body runs
        # at least once even when start >= bound.
        pb = ProgramBuilder("t")
        fb = pb.function("main")
        fb.block("entry")
        acc = fb.mov(0)
        with fb.counted_loop("L", 5, 5):
            fb.add(acc, 1, dest=acc)
        fb.ret(acc)
        assert run_program(pb.finish()).return_value == 1


class TestCalls:
    def test_call_and_return_value(self):
        pb = ProgramBuilder("t")
        helper = pb.function("double", n_params=1)
        helper.block("h_entry")
        (x,) = helper.function.params
        helper.ret(helper.mul(x, 2))
        fb = pb.function("main")
        fb.block("entry")
        fb.ret(fb.call("double", [21]))
        assert run_program(pb.finish()).return_value == 42

    def test_params_do_not_collide_across_functions(self):
        pb = ProgramBuilder("t")
        f = pb.function("main")
        g = pb.function("g", n_params=2)
        all_regs = set(f.function.params) | set(g.function.params)
        # main has no params; g has two distinct ones
        assert len(g.function.params) == 2
        assert len(set(g.function.params)) == 2

    def test_finish_validates(self):
        pb = ProgramBuilder("t")
        fb = pb.function("main")
        fb.block("entry")
        fb.call("nonexistent", [])
        fb.halt()
        with pytest.raises(ValueError):
            pb.finish()
