"""Table-driven semantic matrix: every computational opcode's behaviour
through the interpreter (the machine shares the same semantic tables, so
the differential tests extend this coverage to the simulator)."""

import pytest

from repro.isa import ProgramBuilder, run_program


def _eval_binary(method, a, b):
    pb = ProgramBuilder("t")
    fb = pb.function("main")
    fb.block("entry")
    fb.ret(getattr(fb, method)(a, b))
    return run_program(pb.finish()).return_value


def _eval_unary(method, a):
    pb = ProgramBuilder("t")
    fb = pb.function("main")
    fb.block("entry")
    fb.ret(getattr(fb, method)(a))
    return run_program(pb.finish()).return_value


INT_CASES = [
    ("add", 7, 5, 12),
    ("add", -3, 3, 0),
    ("sub", 7, 5, 2),
    ("sub", 5, 7, -2),
    ("mul", 6, 7, 42),
    ("mul", -4, 3, -12),
    ("div", 17, 5, 3),
    ("div", -17, 5, -3),
    ("rem", 17, 5, 2),
    ("rem", -17, 5, -2),
    ("and_", 0b1100, 0b1010, 0b1000),
    ("or_", 0b1100, 0b1010, 0b1110),
    ("xor", 0b1100, 0b1010, 0b0110),
    ("shl", 3, 4, 48),
    ("shr", 48, 4, 3),
]

FLOAT_CASES = [
    ("fadd", 1.5, 2.25, 3.75),
    ("fsub", 1.5, 2.25, -0.75),
    ("fmul", 1.5, 2.0, 3.0),
    ("fdiv", 7.0, 2.0, 3.5),
]

COMPARE_CASES = [
    ("cmp_eq", 3, 3, True),
    ("cmp_eq", 3, 4, False),
    ("cmp_ne", 3, 4, True),
    ("cmp_lt", 3, 4, True),
    ("cmp_lt", 4, 4, False),
    ("cmp_le", 4, 4, True),
    ("cmp_gt", 5, 4, True),
    ("cmp_ge", 4, 4, True),
    ("cmp_ge", 3, 4, False),
]


@pytest.mark.parametrize("method,a,b,expected", INT_CASES)
def test_integer_semantics(method, a, b, expected):
    assert _eval_binary(method, a, b) == expected


@pytest.mark.parametrize("method,a,b,expected", FLOAT_CASES)
def test_float_semantics(method, a, b, expected):
    assert _eval_binary(method, a, b) == pytest.approx(expected)


@pytest.mark.parametrize("method,a,b,expected", COMPARE_CASES)
def test_compare_semantics(method, a, b, expected):
    assert _eval_binary(method, a, b) is expected


class TestPredicateLogic:
    def _pred_program(self, combine):
        pb = ProgramBuilder("t")
        fb = pb.function("main")
        fb.block("entry")
        true_p = fb.cmp_eq(1, 1)
        false_p = fb.cmp_eq(1, 0)
        result = combine(fb, true_p, false_p)
        fb.ret(fb.select(result, 1, 0))
        return run_program(pb.finish()).return_value

    def test_pand(self):
        assert self._pred_program(lambda fb, t, f: fb.pand(t, f)) == 0
        assert self._pred_program(lambda fb, t, f: fb.pand(t, t)) == 1

    def test_por(self):
        assert self._pred_program(lambda fb, t, f: fb.por(t, f)) == 1
        assert self._pred_program(lambda fb, t, f: fb.por(f, f)) == 0

    def test_pnot(self):
        assert self._pred_program(lambda fb, t, f: fb.pnot(f)) == 1
        assert self._pred_program(lambda fb, t, f: fb.pnot(t)) == 0


class TestSelectAndConversions:
    def test_select_both_arms(self):
        pb = ProgramBuilder("t")
        fb = pb.function("main", n_params=1)
        fb.block("entry")
        (x,) = fb.function.params
        p = fb.cmp_gt(x, 0)
        fb.ret(fb.select(p, 100, 200))
        program = pb.finish()
        assert run_program(program, (5,)).return_value == 100
        assert run_program(program, (-5,)).return_value == 200

    def test_itof_ftoi_roundtrip_truncates(self):
        assert _eval_unary("itof", 7) == 7.0
        pb = ProgramBuilder("t")
        fb = pb.function("main")
        fb.block("entry")
        f = fb.fdiv(fb.itof(7), 2.0)
        fb.ret(fb.ftoi(f))
        assert run_program(pb.finish()).return_value == 3

    def test_shifts_compose(self):
        pb = ProgramBuilder("t")
        fb = pb.function("main")
        fb.block("entry")
        fb.ret(fb.shr(fb.shl(5, 8), 4))
        assert run_program(pb.finish()).return_value == 5 * 16
