"""Unit tests for the reference interpreter."""

import pytest

from repro.isa import Interpreter, ProgramBuilder, run_program
from repro.isa.interp import InterpreterError, OutOfFuel


def _simple_loop_program(n=8):
    pb = ProgramBuilder("t")
    arr = pb.alloc("a", n, init=range(n))
    out = pb.alloc("o", n)
    fb = pb.function("main")
    fb.block("entry")
    with fb.counted_loop("L", 0, n) as i:
        v = fb.load(arr.base, i)
        fb.store(out.base, i, fb.add(v, 100))
    fb.halt()
    return pb.finish()


class TestBasics:
    def test_memory_defaults_to_zero(self):
        pb = ProgramBuilder("t")
        fb = pb.function("main")
        fb.block("entry")
        v = fb.load(12345, 0)
        fb.ret(v)
        assert run_program(pb.finish()).return_value == 0

    def test_store_then_load(self):
        pb = ProgramBuilder("t")
        fb = pb.function("main")
        fb.block("entry")
        fb.store(100, 0, 77)
        fb.ret(fb.load(100, 0))
        assert run_program(pb.finish()).return_value == 77

    def test_array_values_helper(self):
        program = _simple_loop_program(4)
        result = run_program(program)
        assert result.array_values(program, "o") == [100, 101, 102, 103]

    def test_dynamic_op_count_grows_with_trip_count(self):
        small = run_program(_simple_loop_program(4)).dynamic_ops
        large = run_program(_simple_loop_program(16)).dynamic_ops
        assert large > small

    def test_halt_stops_execution(self):
        pb = ProgramBuilder("t")
        arr = pb.alloc("o", 1)
        fb = pb.function("main")
        fb.block("entry")
        fb.halt()
        fb.block("unreachable")
        fb.store(arr.base, 0, 1)
        fb.halt()
        result = run_program(pb.finish())
        assert result.memory.get(arr.base, 0) == 0

    def test_main_args(self):
        pb = ProgramBuilder("t")
        fb = pb.function("main", n_params=2)
        fb.block("entry")
        a, b = fb.function.params
        fb.ret(fb.add(a, b))
        assert run_program(pb.finish(), (30, 12)).return_value == 42

    def test_wrong_arity_raises(self):
        pb = ProgramBuilder("t")
        fb = pb.function("main", n_params=1)
        fb.block("entry")
        fb.ret(0)
        with pytest.raises(InterpreterError):
            run_program(pb.finish(), ())


class TestFuelAndErrors:
    def test_infinite_loop_hits_fuel(self):
        pb = ProgramBuilder("t")
        fb = pb.function("main")
        fb.block("spin")
        fb.jump("spin")
        interp = Interpreter(pb.finish(), fuel=500)
        with pytest.raises(OutOfFuel):
            interp.run()

    def test_fall_off_function_raises(self):
        pb = ProgramBuilder("t")
        helper = pb.function("h")
        helper.block("entry")
        helper.mov(1)  # no ret
        fb = pb.function("main")
        fb.block("entry")
        fb.call("h", [])
        fb.halt()
        with pytest.raises(InterpreterError):
            run_program(pb.finish())


class TestObservers:
    def test_op_observer_sees_every_dynamic_op(self):
        program = _simple_loop_program(4)
        interp = Interpreter(program)
        count = [0]
        interp.observe_ops(lambda op, frame: count.__setitem__(0, count[0] + 1))
        result = interp.run()
        assert count[0] == result.dynamic_ops

    def test_memory_observer_sees_loads_and_stores(self):
        program = _simple_loop_program(4)
        interp = Interpreter(program)
        events = []
        interp.observe_memory(
            lambda op, addr, is_store, frame: events.append((addr, is_store))
        )
        interp.run()
        loads = [e for e in events if not e[1]]
        stores = [e for e in events if e[1]]
        assert len(loads) == 4
        assert len(stores) == 4

    def test_block_counts(self):
        program = _simple_loop_program(6)
        result = run_program(program)
        assert result.block_counts[("main", "L")] == 6

    def test_frame_depth_tracks_calls(self):
        pb = ProgramBuilder("t")
        helper = pb.function("h")
        helper.block("entry")
        helper.ret(1)
        fb = pb.function("main")
        fb.block("entry")
        fb.call("h", [])
        fb.halt()
        interp = Interpreter(pb.finish())
        depths = []
        interp.observe_blocks(
            lambda block, frame: depths.append((frame.function.name, frame.depth))
        )
        interp.run()
        assert ("main", 0) in depths
        assert ("h", 1) in depths


class TestCallSemantics:
    def test_nested_calls(self):
        pb = ProgramBuilder("t")
        inner = pb.function("inner", n_params=1)
        inner.block("i_entry")
        (x,) = inner.function.params
        inner.ret(inner.add(x, 1))
        outer = pb.function("outer", n_params=1)
        outer.block("o_entry")
        (y,) = outer.function.params
        t = outer.call("inner", [y])
        outer.ret(outer.mul(t, 2))
        fb = pb.function("main")
        fb.block("entry")
        fb.ret(fb.call("outer", [20]))
        assert run_program(pb.finish()).return_value == 42

    def test_call_result_used_after_loop_of_calls(self):
        pb = ProgramBuilder("t")
        helper = pb.function("inc", n_params=1)
        helper.block("entry_h")
        (x,) = helper.function.params
        helper.ret(helper.add(x, 1))
        fb = pb.function("main")
        fb.block("entry")
        acc = fb.mov(0)
        with fb.counted_loop("L", 0, 5):
            w = fb.call("inc", [acc])
            fb.mov(w, dest=acc)
        fb.ret(acc)
        assert run_program(pb.finish()).return_value == 5
