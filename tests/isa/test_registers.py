"""Unit tests for register allocation and per-core register files."""

import pytest

from repro.isa.operations import Reg, RegFile
from repro.isa.registers import (
    RegisterAllocator,
    RegisterFile,
    UninitializedRegister,
)


class TestRegisterAllocator:
    def test_fresh_registers_are_sequential(self):
        allocator = RegisterAllocator()
        assert allocator.gpr() == Reg(RegFile.GPR, 0)
        assert allocator.gpr() == Reg(RegFile.GPR, 1)

    def test_files_count_independently(self):
        allocator = RegisterAllocator()
        allocator.gpr()
        assert allocator.fpr() == Reg(RegFile.FPR, 0)
        assert allocator.pr() == Reg(RegFile.PR, 0)
        assert allocator.btr() == Reg(RegFile.BTR, 0)

    def test_reserve_prevents_collision(self):
        allocator = RegisterAllocator()
        allocator.reserve(Reg(RegFile.GPR, 10))
        assert allocator.gpr() == Reg(RegFile.GPR, 11)

    def test_reserve_below_watermark_is_noop(self):
        allocator = RegisterAllocator()
        allocator.gpr()
        allocator.gpr()
        allocator.reserve(Reg(RegFile.GPR, 0))
        assert allocator.gpr() == Reg(RegFile.GPR, 2)


class TestRegisterFile:
    def test_read_after_write(self):
        regs = RegisterFile()
        r = Reg(RegFile.GPR, 0)
        regs.write(r, 42)
        assert regs.read(r) == 42

    def test_uninitialized_read_raises(self):
        regs = RegisterFile(core_id=2)
        with pytest.raises(UninitializedRegister) as err:
            regs.read(Reg(RegFile.GPR, 9))
        assert "core 2" in str(err.value)

    def test_defined(self):
        regs = RegisterFile()
        r = Reg(RegFile.PR, 0)
        assert not regs.defined(r)
        regs.write(r, True)
        assert regs.defined(r)

    def test_snapshot_restore_roundtrip(self):
        regs = RegisterFile()
        a, b = Reg(RegFile.GPR, 0), Reg(RegFile.GPR, 1)
        regs.write(a, 1)
        snapshot = regs.snapshot()
        regs.write(a, 99)
        regs.write(b, 100)
        regs.restore(snapshot)
        assert regs.read(a) == 1
        assert not regs.defined(b)

    def test_snapshot_is_a_copy(self):
        regs = RegisterFile()
        a = Reg(RegFile.GPR, 0)
        regs.write(a, 1)
        snapshot = regs.snapshot()
        regs.write(a, 2)
        assert snapshot[a] == 1

    def test_len_counts_written_registers(self):
        regs = RegisterFile()
        assert len(regs) == 0
        regs.write(Reg(RegFile.GPR, 0), 1)
        regs.write(Reg(RegFile.FPR, 0), 1.5)
        assert len(regs) == 2
