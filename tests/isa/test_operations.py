"""Unit tests for the operation/operand model."""

import pytest

from repro.isa.operations import (
    ALU_SEMANTICS,
    COMM_OPCODES,
    COMPARISONS,
    CONTROL_OPCODES,
    MEMORY_OPCODES,
    Imm,
    Opcode,
    Operation,
    Reg,
    RegFile,
    fresh_uid,
    make_op,
)


class TestRegAndImm:
    def test_reg_repr_uses_file_prefix(self):
        assert repr(Reg(RegFile.GPR, 3)) == "r3"
        assert repr(Reg(RegFile.FPR, 0)) == "f0"
        assert repr(Reg(RegFile.PR, 7)) == "p7"
        assert repr(Reg(RegFile.BTR, 1)) == "b1"

    def test_regs_hash_by_value(self):
        assert Reg(RegFile.GPR, 5) == Reg(RegFile.GPR, 5)
        assert len({Reg(RegFile.GPR, 5), Reg(RegFile.GPR, 5)}) == 1

    def test_same_index_different_file_distinct(self):
        assert Reg(RegFile.GPR, 2) != Reg(RegFile.FPR, 2)

    def test_imm_wraps_value(self):
        assert Imm(4).value == 4
        assert repr(Imm(-1)) == "#-1"


class TestOperation:
    def test_make_op_collects_attrs(self):
        op = make_op(Opcode.PBR, [Reg(RegFile.BTR, 0)], [], target="L1")
        assert op.attrs["target"] == "L1"
        assert op.dest == Reg(RegFile.BTR, 0)

    def test_uids_are_unique(self):
        a = make_op(Opcode.NOP)
        b = make_op(Opcode.NOP)
        assert a.uid != b.uid

    def test_clone_preserves_uid_by_default(self):
        op = make_op(Opcode.ADD, [Reg(RegFile.GPR, 0)], [Imm(1), Imm(2)])
        clone = op.clone()
        assert clone.uid == op.uid
        assert clone is not op
        assert clone.srcs == op.srcs

    def test_clone_with_overrides(self):
        op = make_op(Opcode.ADD, [Reg(RegFile.GPR, 0)], [Imm(1), Imm(2)])
        clone = op.clone(core=3)
        assert clone.core == 3
        assert op.core is None

    def test_clone_attrs_are_independent(self):
        op = make_op(Opcode.SEND, [], [Imm(0)], target_core=1)
        clone = op.clone()
        clone.attrs["target_core"] = 2
        assert op.attrs["target_core"] == 1

    def test_operations_compare_by_identity(self):
        a = make_op(Opcode.NOP)
        b = make_op(Opcode.NOP)
        assert a != b
        assert a == a
        assert a in [a]
        assert b not in [a]

    def test_src_regs_filters_immediates(self):
        r = Reg(RegFile.GPR, 1)
        op = make_op(Opcode.ADD, [Reg(RegFile.GPR, 0)], [r, Imm(5)])
        assert op.src_regs() == (r,)

    def test_predicates(self):
        assert make_op(Opcode.LOAD).is_memory()
        assert make_op(Opcode.BR).is_control()
        assert make_op(Opcode.PUT).is_comm()
        assert not make_op(Opcode.ADD).is_memory()

    def test_fresh_uid_monotone(self):
        assert fresh_uid() < fresh_uid()


class TestSemanticTables:
    def test_alu_semantics_cover_integer_ops(self):
        assert ALU_SEMANTICS[Opcode.ADD](2, 3) == 5
        assert ALU_SEMANTICS[Opcode.SUB](2, 3) == -1
        assert ALU_SEMANTICS[Opcode.MUL](4, 3) == 12
        assert ALU_SEMANTICS[Opcode.XOR](5, 3) == 6
        assert ALU_SEMANTICS[Opcode.SHL](1, 4) == 16
        assert ALU_SEMANTICS[Opcode.SHR](16, 2) == 4

    def test_division_truncates_toward_zero(self):
        assert ALU_SEMANTICS[Opcode.DIV](7, 2) == 3
        assert ALU_SEMANTICS[Opcode.DIV](-7, 2) == -3
        assert ALU_SEMANTICS[Opcode.REM](7, 2) == 1
        assert ALU_SEMANTICS[Opcode.REM](-7, 2) == -1

    def test_float_division_stays_float(self):
        assert ALU_SEMANTICS[Opcode.FDIV](7.0, 2.0) == 3.5
        assert ALU_SEMANTICS[Opcode.DIV](7.0, 2.0) == 3.5

    def test_comparisons(self):
        assert COMPARISONS[Opcode.CMP_LT](1, 2)
        assert not COMPARISONS[Opcode.CMP_LT](2, 2)
        assert COMPARISONS[Opcode.CMP_LE](2, 2)
        assert COMPARISONS[Opcode.CMP_NE](1, 2)
        assert COMPARISONS[Opcode.CMP_GE](2, 2)
        assert COMPARISONS[Opcode.CMP_GT](3, 2)
        assert COMPARISONS[Opcode.CMP_EQ](2, 2)

    def test_opcode_groups_disjoint_where_expected(self):
        assert not (MEMORY_OPCODES & CONTROL_OPCODES)
        assert not (MEMORY_OPCODES & COMM_OPCODES)
        assert Opcode.SEND in COMM_OPCODES
        assert Opcode.RECV in COMM_OPCODES
        assert Opcode.CALL in CONTROL_OPCODES
