"""Tests for the latency tables."""

from repro.isa.latencies import (
    DEFAULT_LATENCIES,
    SCHEDULED_LOAD_LATENCY,
    latency_of,
    scheduling_latency,
)
from repro.isa.operations import Opcode


class TestLatencyTable:
    def test_every_opcode_has_a_latency(self):
        for opcode in Opcode:
            assert latency_of(opcode) >= 1, opcode

    def test_itanium_flavour(self):
        # Single-cycle integer ALU, multi-cycle multiply/divide,
        # 4-cycle floating point adds/multiplies.
        assert latency_of(Opcode.ADD) == 1
        assert latency_of(Opcode.MUL) > 1
        assert latency_of(Opcode.DIV) > latency_of(Opcode.MUL)
        assert latency_of(Opcode.FADD) == 4
        assert latency_of(Opcode.FDIV) > latency_of(Opcode.FMUL)

    def test_scheduler_plans_for_l1_hit_loads(self):
        assert scheduling_latency(Opcode.LOAD) == SCHEDULED_LOAD_LATENCY
        assert SCHEDULED_LOAD_LATENCY > latency_of(Opcode.LOAD)

    def test_scheduling_latency_matches_table_elsewhere(self):
        for opcode in Opcode:
            if opcode is not Opcode.LOAD:
                assert scheduling_latency(opcode) == latency_of(opcode)

    def test_network_ops_occupy_one_slot(self):
        for opcode in (Opcode.PUT, Opcode.GET, Opcode.SEND, Opcode.RECV,
                       Opcode.BCAST, Opcode.SPAWN, Opcode.MODE_SWITCH):
            assert latency_of(opcode) == 1
