"""Scaled-mesh properties: snooping and directory coherence must be
architecturally indistinguishable (bit-identical final memory, clean
voltlint and race-sanitizer reports) on 16- and 32-core meshes, and at
least one benchmark must reach a 16-core speedup the paper's 4-core
machine cannot.

A sampled slice runs here; CI's large-mesh smoke leg and the full
25-benchmark differential matrix cover the rest.
"""

import dataclasses

import pytest

from repro.analysis import RaceSanitizer, verify_compiled
from repro.arch.config import mesh, single_core
from repro.compiler.driver import VoltronCompiler
from repro.sim.caches import DirectoryCoherence
from repro.sim.machine import VoltronMachine
from repro.workloads.suite import build

#: Region-flavour coverage at sampled size: ILP-heavy, queue-heavy TLP,
#: DOALL-carrying LLP, and a hybrid mix.
SAMPLE = ("rawcaudio", "epic", "gsmdecode", "171.swim")

STRATEGIES = ("ilp", "tlp", "llp", "hybrid")


def _directory(config):
    return dataclasses.replace(config, coherence="directory")


@pytest.mark.parametrize("bench_name", SAMPLE)
@pytest.mark.parametrize("n_cores", (16, 32))
def test_snoop_directory_bit_identical(bench_name, n_cores):
    bench = build(bench_name)
    compiler = VoltronCompiler(bench.program)
    config = mesh(n_cores)
    for strategy in STRATEGIES:
        compiled = compiler.compile(strategy, config)
        snoop = VoltronMachine(compiled, config)
        snoop.run()
        directory = VoltronMachine(compiled, _directory(config))
        assert isinstance(directory.bus, DirectoryCoherence)
        directory.run()
        assert snoop.final_memory() == directory.final_memory(), (
            f"{bench_name}/{strategy}: protocols disagree on memory"
        )
        directory.bus.check_directory()


@pytest.mark.parametrize("bench_name", SAMPLE)
@pytest.mark.parametrize("n_cores", (16, 32))
def test_large_mesh_cells_verify_clean(bench_name, n_cores):
    """voltlint over every strategy at scale; the race sanitizer over
    the communication-heavy strategies (tlp exercises decoupled queues,
    hybrid both modes)."""
    bench = build(bench_name)
    compiler = VoltronCompiler(bench.program)
    config = mesh(n_cores)
    for strategy in STRATEGIES:
        compiled = compiler.compile(strategy, config)
        report = verify_compiled(compiled, config)
        assert report.ok, f"{bench_name}/{strategy}: {report.render()}"
        if strategy in ("tlp", "hybrid"):
            sanitizer = RaceSanitizer()
            machine = VoltronMachine(compiled, config, sanitizer=sanitizer)
            machine.run()
            assert not sanitizer.findings, (
                f"{bench_name}/{strategy}: "
                f"{[f.render() for f in sanitizer.findings]}"
            )


def test_vlink_queues_preserve_semantics_at_scale():
    """The Virtual-Link pool is a timing change only: same final memory
    as per-pair queues, voltlint clean under the relaxed channel rules."""
    bench = build("epic")
    config = mesh(16)
    vlink = dataclasses.replace(
        config,
        network=dataclasses.replace(config.network, queue_policy="vlink"),
    )
    compiled = VoltronCompiler(bench.program).compile("tlp", config)
    assert verify_compiled(compiled, vlink).ok
    pair_machine = VoltronMachine(compiled, config)
    pair_machine.run()
    vlink_machine = VoltronMachine(compiled, vlink)
    vlink_machine.run()
    assert pair_machine.final_memory() == vlink_machine.final_memory()


def test_sixteen_cores_beat_the_paper_grid():
    """The scaling headline: a benchmark whose 16-core speedup exceeds
    anything the paper's 4-core machine reaches under any strategy."""
    bench = build("epic")
    compiler = VoltronCompiler(bench.program)
    baseline = VoltronMachine(
        compiler.compile("baseline", single_core()), single_core()
    )
    serial = baseline.run().cycles

    def speedup(n_cores, strategy):
        config = mesh(n_cores)
        machine = VoltronMachine(compiler.compile(strategy, config), config)
        return serial / machine.run().cycles

    best_at_4 = max(speedup(4, s) for s in STRATEGIES)
    assert speedup(16, "tlp") > best_at_4
