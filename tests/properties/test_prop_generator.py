"""Property suite: the workload generator vs the full fuzzing oracle.

Every seeded generated program must (1) build and compile on every
oracle cell, (2) pass the voltlint static verifier, (3) execute under
the race sanitizer with no findings and a quiescent network, and
(4) leave final memory bit-identical to the sequential reference
interpreter.  A failure here is a compiler bug found by fuzzing -- the
suite shrinks the offending recipe to a minimized repro and writes it
to an artifact directory before failing, so the find is replayable
without re-running the whole sweep.

Seeding mirrors the chaos suite's ``CHAOS_SEED`` contract:

* ``GEN_SEED`` -- base seed (CI's fuzz job randomizes and echoes it, so
  any failure replays with ``GEN_SEED=<n> pytest
  tests/properties/test_prop_generator.py``).
* ``GEN_COUNT`` -- how many consecutive seeds to check (default 200, the
  committed fuzz floor; CI's smoke slice in the main test job rides the
  same default, the nightly-style fuzz job raises it).
* ``GEN_REPRO_DIR`` -- where minimized repros land (default
  ``.fuzz-repros/``).
* ``GEN_JOURNAL`` -- optional write-ahead journal path making the
  campaign resumable: each seed's oracle verdict is recorded
  (planned/completed/failed) through :class:`repro.harness.RunJournal`,
  and a re-run with the same ``GEN_JOURNAL`` skips every seed whose
  ``completed`` record is already durable -- a killed fuzz job picks up
  where it left off instead of re-fuzzing from seed one.
"""

import atexit
import os

import pytest

from repro.analysis import check_benchmark
from repro.harness.journal import JournalReplay, RunJournal
from repro.workloads.generator import (
    GenKnobs,
    build_recipe,
    generate,
    generate_recipe,
    make_handle,
)
from repro.workloads.shrink import shrink_recipe, write_repro

GEN_SEED = int(os.environ.get("GEN_SEED", "1"))
GEN_COUNT = int(os.environ.get("GEN_COUNT", "200"))
GEN_REPRO_DIR = os.environ.get("GEN_REPRO_DIR", ".fuzz-repros")
GEN_JOURNAL = os.environ.get("GEN_JOURNAL")

#: Campaign journal + replay of any prior interrupted campaign, armed
#: only under GEN_JOURNAL.  The journal key is the workload handle
#: (gen:<seed>:<knobs-hash>): it fingerprints seed *and* knobs, so a
#: knob change never lets a stale ``completed`` record skip a seed.
_JOURNAL = None
_REPLAY = None
if GEN_JOURNAL:
    if os.path.exists(GEN_JOURNAL):
        _REPLAY = JournalReplay.from_path(GEN_JOURNAL)
    _JOURNAL = RunJournal(
        GEN_JOURNAL,
        resume=os.path.exists(GEN_JOURNAL),
        context={"driver": "fuzz", "gen_seed": GEN_SEED,
                 "gen_count": GEN_COUNT},
    )
    atexit.register(_JOURNAL.close)

#: Fuzz knobs: the default design-space axes with trip counts trimmed so
#: one program's oracle pass stays under ~100 ms -- coverage comes from
#: the number of seeds, not the iteration counts.
FUZZ_KNOBS = GenKnobs(trips=(8, 48))


def _recipe_oracle(recipe):
    """Recipe-level oracle for the shrinker: None = passes."""
    bench = build_recipe(recipe, "shrink_probe", data_seed=GEN_SEED)
    verdict = check_benchmark(bench)
    return None if verdict.ok else verdict.describe()


@pytest.mark.parametrize("seed", range(GEN_SEED, GEN_SEED + GEN_COUNT))
def test_generated_program_passes_full_oracle(seed):
    handle = make_handle(seed, FUZZ_KNOBS)
    cell = (handle, 0, "oracle")
    if _REPLAY is not None and _REPLAY.is_completed(handle):
        pytest.skip(f"{handle}: journaled complete in {GEN_JOURNAL}")
    if _JOURNAL is not None:
        _JOURNAL.planned(cell, handle)
        _JOURNAL.dispatched(cell, handle, attempt=1, mode="fuzz")
    bench = generate(seed, FUZZ_KNOBS)
    verdict = check_benchmark(bench)
    if _JOURNAL is not None:
        if verdict.ok:
            _JOURNAL.completed(cell, handle, source="fuzz", attempt=1)
        else:
            _JOURNAL.failed(
                cell, handle, reason=verdict.describe(), attempt=1
            )
    if not verdict.ok:
        # A real find: minimize it and persist the repro before failing.
        result = shrink_recipe(bench.recipe, _recipe_oracle)
        path = write_repro(
            GEN_REPRO_DIR,
            result,
            handle=bench.name,
            seed=seed,
            knobs=FUZZ_KNOBS,
        )
        pytest.fail(
            f"{bench.name}: {verdict.describe()}; minimized repro "
            f"({result.original_regions} -> {len(result.recipe)} regions) "
            f"written to {path}"
        )


def test_oracle_coverage_counts():
    """The oracle actually runs every advertised referee: all static
    cells, at least one dynamic cell, and the bit-identity check (which
    only happens inside the dynamic pass)."""
    verdict = check_benchmark(generate(GEN_SEED, FUZZ_KNOBS))
    assert verdict.ok
    assert verdict.static_cells == 8  # (2, 4) cores x 4 strategies
    assert verdict.dynamic_cells >= 1


def test_gen_seed_knob_changes_programs():
    """The env seed genuinely varies the population (CI randomizes it):
    consecutive seeds must not collapse onto one recipe."""
    recipes = {
        repr(generate_recipe(seed, FUZZ_KNOBS))
        for seed in range(GEN_SEED, GEN_SEED + 20)
    }
    assert len(recipes) > 1


def test_oracle_static_stage_has_teeth():
    """Anti-oracle-rot: a planted PR-5 miscompile (dropped SEND) must be
    rejected at the static stage -- a fuzzer whose oracle accepts broken
    communication finds nothing."""
    from repro.analysis import apply_mutation

    bench = generate(GEN_SEED, FUZZ_KNOBS)
    verdict = check_benchmark(
        bench,
        max_cycles=500_000,
        mutate=lambda compiled: apply_mutation(compiled, "drop_send"),
    )
    assert not verdict.ok
    assert verdict.stage == "static"


def test_oracle_dynamic_stage_has_teeth():
    """With the static stage bypassed, a dropped RECV must still be
    caught by the execution referees (a race/leak finding or memory
    divergence) -- bit-identity is not decorative."""
    from repro.analysis import apply_mutation

    bench = generate(GEN_SEED, FUZZ_KNOBS)
    verdict = check_benchmark(
        bench,
        static_cells=(),
        max_cycles=500_000,
        mutate=lambda compiled: apply_mutation(compiled, "drop_recv"),
    )
    assert not verdict.ok
    assert verdict.stage in ("dynamic", "bit-identity")


def test_handles_are_population_distinct():
    """Two hundred consecutive handles are two hundred distinct
    programs (fingerprint-level), not aliases of a few shapes."""
    from repro.harness.cache import program_fingerprint

    fingerprints = {
        program_fingerprint(generate(seed, FUZZ_KNOBS).program)
        for seed in range(GEN_SEED, GEN_SEED + 25)
    }
    assert len(fingerprints) == 25


def test_make_handle_matches_generate():
    bench = generate(GEN_SEED, FUZZ_KNOBS)
    assert bench.name == make_handle(GEN_SEED, FUZZ_KNOBS)
