"""Property-based tests on core data structures and invariants."""

from hypothesis import given, settings, strategies as st

from repro.arch.config import CacheConfig, NetworkConfig, four_core
from repro.arch.mesh import Mesh
from repro.sim.caches import EXCLUSIVE, MODIFIED, SetAssocCache, SnoopBus
from repro.sim.memory import MainMemory
from repro.sim.network import OperandNetwork
from repro.sim.tm import TransactionalMemory


@st.composite
def meshes(draw):
    rows = draw(st.integers(min_value=1, max_value=4))
    cols = draw(st.integers(min_value=1, max_value=4))
    n = draw(st.integers(min_value=1, max_value=rows * cols))
    return Mesh(rows, cols, n)


class TestMeshProperties:
    @settings(max_examples=50, deadline=None)
    @given(meshes(), st.data())
    def test_route_reaches_destination_in_hops_steps(self, mesh, data):
        src = data.draw(st.integers(min_value=0, max_value=mesh.n_cores - 1))
        dst = data.draw(st.integers(min_value=0, max_value=mesh.n_cores - 1))
        route = mesh.route(src, dst)
        assert len(route) == mesh.hops(src, dst)
        current = src
        for nxt in route:
            assert mesh.hops(current, nxt) == 1
            current = nxt
        assert current == dst

    @settings(max_examples=50, deadline=None)
    @given(meshes(), st.data())
    def test_hops_symmetric_and_triangle(self, mesh, data):
        cores = st.integers(min_value=0, max_value=mesh.n_cores - 1)
        a, b, c = data.draw(cores), data.draw(cores), data.draw(cores)
        assert mesh.hops(a, b) == mesh.hops(b, a)
        assert mesh.hops(a, c) <= mesh.hops(a, b) + mesh.hops(b, c)


class TestCacheProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 255), st.booleans()),
            min_size=1,
            max_size=120,
        )
    )
    def test_moesi_single_writer_invariant(self, accesses):
        """After any access sequence, at most one cache holds a line in a
        writable (M/E) state, and M/E excludes any other copies."""
        bus = SnoopBus(four_core())
        lines = set()
        for core, addr, is_store in accesses:
            bus.access(core, addr, is_store)
            lines.add(addr // bus.config.l1d.line_words)
        for line in lines:
            states = [bus.l1ds[c].state_of(line) for c in range(4)]
            writable = [s for s in states if s in ("M", "E")]
            assert len(writable) <= 1
            if writable:
                others = [s for s in states if s not in ("M", "E")]
                assert all(s == "I" for s in others)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(0, 63), min_size=1, max_size=100),
        st.integers(1, 4),
    )
    def test_set_assoc_capacity_respected(self, lines, ways):
        cache = SetAssocCache(
            CacheConfig(size_words=2 * ways * 8, associativity=ways)
        )
        for line in lines:
            cache.insert(line, EXCLUSIVE)
            for cache_set in cache.sets:
                assert len(cache_set) <= ways


class TestNetworkProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(0, 99)),
            min_size=1,
            max_size=32,
        )
    )
    def test_messages_arrive_in_fifo_order_per_pair(self, sends):
        network = OperandNetwork(Mesh(2, 2, 4), NetworkConfig(queue_depth=64))
        sent = {}
        for cycle, (src, dst, value) in enumerate(sends):
            if src == dst:
                continue
            network.send(src, dst, value, cycle)
            sent.setdefault((src, dst), []).append(value)
        network.deliver(10_000)
        for (src, dst), values in sent.items():
            received = []
            while True:
                message = network.try_receive(dst, src, 10_000)
                if message is None:
                    break
                received.append(message.value)
            assert received == values

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 8))
    def test_credits_conserved(self, depth):
        network = OperandNetwork(Mesh(1, 2, 2), NetworkConfig(queue_depth=depth))
        for k in range(depth):
            network.send(0, 1, k, cycle=0)
        assert not network.can_send(0, 1)
        network.deliver(100)
        for _ in range(depth):
            assert network.try_receive(1, 0, cycle=100) is not None
        assert network.can_send(0, 1)


class TestTMProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 7), st.booleans()),
            min_size=0,
            max_size=24,
        )
    )
    def test_speculative_execution_serializes(self, accesses):
        """Whatever the chunks read/write, retry-on-abort must converge to
        the serial order's final memory state.

        Chunk k performs its slice of the accesses; value written is a
        function of (chunk, position) so orderings are distinguishable."""
        chunks = {k: [] for k in range(4)}
        for position, (chunk, addr, is_store) in enumerate(accesses):
            chunks[chunk].append((position, addr, is_store))

        # Serial semantics: chunk 0's accesses, then chunk 1's, ...
        serial = MainMemory()
        for k in range(4):
            for position, addr, is_store in chunks[k]:
                if is_store:
                    serial.store(addr, position)

        memory = MainMemory()
        tm = TransactionalMemory(memory)

        # Execute all four chunks "concurrently", then commit in order,
        # retrying aborted chunks (which is what the machine does).
        def run_chunk(k):
            tm.begin(k, region=1, order=k, n_chunks=4)
            for position, addr, is_store in chunks[k]:
                if is_store:
                    tm.store(k, addr, position)
                else:
                    tm.load(k, addr)

        for k in range(4):
            run_chunk(k)
        for k in range(4):
            while not tm.try_commit(k):
                run_chunk(k)

        for addr in {a for _c, a, _s in accesses}:
            assert memory.load(addr) == serial.load(addr)
