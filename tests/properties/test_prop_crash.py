"""Crash-chaos property suite: SIGKILL vs the journaled harness.

The crash-safety contract under test: *no matter where a SIGKILL lands*
-- a worker process mid-cell, the driver mid-grid -- the journal +
durable result cache let the next invocation resume to a result
bit-identical to a fault-free run, without re-simulating any cell whose
``completed`` record made it to disk.

Kill points are randomized, mirroring the chaos suite's ``CHAOS_SEED``
contract:

* ``KILL_SEED`` -- base seed (CI randomizes and echoes it, so any
  failure replays with ``KILL_SEED=<n> pytest
  tests/properties/test_prop_crash.py``).  It draws each worker's kill
  phase (before simulating vs after the durable store) and how deep
  into the grid the driver itself is shot.
"""

from __future__ import annotations

import io
import json
import os
import random
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.harness import ExperimentRunner, JournalReplay
from repro.harness.cli import main as cli_main
from repro.harness.experiments import _run_cells_worker
from repro.harness.journal import read_journal

KILL_SEED = int(os.environ.get("KILL_SEED", "1"))

BENCHES = ("rawcaudio", "gsmdecode")
#: Two specs (fan-out is per benchmark), two cells each.
CELLS = [(name, cores, s) for name in BENCHES
         for cores, s in ((1, "baseline"), (2, "ilp"))]


def _kill_plan_worker(spec):
    """Pool worker that honors a one-shot kill plan: a
    ``killplan-<benchmark>`` file in the cache dir names the phase --
    ``before-simulate`` (SIGKILL with nothing durable) or
    ``after-store`` (simulate, publish durably, *then* SIGKILL before
    reporting back).  The marker is consumed first, so the retry or the
    serial fallback runs clean, exactly like a real transient crash."""
    marker = Path(spec[4]) / f"killplan-{spec[0]}"
    if marker.exists():
        phase = marker.read_text()
        marker.unlink()
        if phase == "before-simulate":
            os.kill(os.getpid(), signal.SIGKILL)
        payloads = _run_cells_worker(spec)
        assert payloads  # the store happened; the report never will
        os.kill(os.getpid(), signal.SIGKILL)
    return _run_cells_worker(spec)


def _golden(tmp_path):
    """Fault-free reference results, from an isolated cache."""
    runner = ExperimentRunner(
        benchmarks=list(BENCHES), cache_dir=tmp_path / "golden-cache", jobs=1
    )
    runner.prefetch(CELLS)
    return {cell: runner._runs[cell].to_dict() for cell in CELLS}


class TestWorkerSigkill:
    def test_killed_workers_converge_to_golden(self, tmp_path):
        rng = random.Random(KILL_SEED)
        phases = {
            name: rng.choice(("before-simulate", "after-store"))
            for name in BENCHES
        }
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        for name, phase in phases.items():
            (cache_dir / f"killplan-{name}").write_text(phase)
        journal = tmp_path / "run.jnl"
        runner = ExperimentRunner(
            benchmarks=list(BENCHES), cache_dir=cache_dir, jobs=2,
            journal=journal,
        )
        runner._worker_fn = _kill_plan_worker
        runner.prefetch(CELLS)
        runner.close_journal()

        golden = _golden(tmp_path)
        for cell in CELLS:
            assert runner._runs[cell].to_dict() == golden[cell]
        assert runner.failures.worker_crashes >= 1
        replay = JournalReplay.from_path(journal)
        assert replay.balanced()
        assert len(replay.completed_keys()) == len(CELLS)

        # Zero re-simulation of journaled-complete cells: once a key's
        # ``completed`` record is on disk (store was durable), no later
        # record may dispatch it again.  (A per-phase assertion would be
        # racy: a ``before-simulate`` crash makes the pool terminate the
        # sibling ``after-store`` worker, possibly before its store --
        # re-simulating *that* cell is the correct recovery.)
        completed_keys = set()
        for record in read_journal(journal):
            if record["event"] == "completed":
                completed_keys.add(record["key"])
            elif record["event"] == "dispatched":
                assert record["key"] not in completed_keys, (
                    f"{record['cell']}: re-dispatched after completion"
                )

    def test_resume_after_worker_chaos_is_pure_replay(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        (cache_dir / "killplan-rawcaudio").write_text("after-store")
        journal = tmp_path / "run.jnl"
        chaos = ExperimentRunner(
            benchmarks=list(BENCHES), cache_dir=cache_dir, jobs=2,
            journal=journal,
        )
        chaos._worker_fn = _kill_plan_worker
        chaos.prefetch(CELLS)
        chaos.close_journal()
        resumed = ExperimentRunner(
            benchmarks=list(BENCHES), cache_dir=cache_dir, jobs=2,
            journal=journal, resume=True,
        )
        resumed.prefetch(CELLS)
        resumed.close_journal()
        assert resumed.journal_stats["replayed"] == len(CELLS)
        assert not resumed.failures.any()


SWEEP_ARGS = [
    "sweep", "--workloads", *BENCHES,
    "--cores", "2", "4", "--strategies", "ilp", "tlp", "llp",
]

#: Cells the sweep grid dispatches: 2 baselines + 2x2x3 strategy cells.
SWEEP_GRID = 14


def _strip_volatile(document):
    return {
        key: value
        for key, value in document.items()
        if key not in ("cache", "journal")
    }


def _completed_count(journal):
    try:
        text = journal.read_text()
    except OSError:
        return 0
    return text.count('"event":"completed"')


class TestDriverSigkill:
    def test_killed_driver_resumes_bit_identical(self, tmp_path):
        rng = random.Random(KILL_SEED + 1)
        kill_after = rng.randint(2, 6)
        cache_dir = tmp_path / "cache"
        journal = tmp_path / "sweep.jnl"
        artifact = tmp_path / "sweep.json"

        golden_out = io.StringIO()
        golden_artifact = tmp_path / "golden.json"
        assert cli_main(
            SWEEP_ARGS + [
                "--cache-dir", str(tmp_path / "golden-cache"),
                "--out", str(golden_artifact),
            ],
            out=golden_out,
        ) == 0
        golden = _strip_volatile(json.loads(golden_artifact.read_text()))

        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + os.pathsep * bool(
            env.get("PYTHONPATH")
        ) + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.harness.cli", *SWEEP_ARGS,
             "--cache-dir", str(cache_dir), "--journal", str(journal),
             "--out", str(artifact)],
            env=env, cwd=Path(__file__).resolve().parents[2],
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        deadline = time.monotonic() + 60.0
        try:
            while (
                _completed_count(journal) < kill_after
                and proc.poll() is None
            ):
                if time.monotonic() > deadline:  # pragma: no cover
                    pytest.fail("sweep subprocess made no progress")
                time.sleep(0.005)
        finally:
            proc.kill()
            proc.wait()
        completed_before = {
            record["key"]
            for record in read_journal(journal)
            if record["event"] == "completed"
        }
        # The kill landed mid-grid (unless the machine raced the whole
        # sweep, in which case resume degenerates to pure replay --
        # still a valid convergence check, just log the weaker mode).
        interrupted = len(completed_before) < SWEEP_GRID
        records_before = len(read_journal(journal))

        out = io.StringIO()
        assert cli_main(
            SWEEP_ARGS + [
                "--cache-dir", str(cache_dir), "--resume", str(journal),
                "--out", str(artifact),
            ],
            out=out,
        ) == 0
        resumed = _strip_volatile(json.loads(artifact.read_text()))
        assert resumed == golden  # bit-identical modulo volatile tallies

        records = read_journal(journal)
        replay = JournalReplay(records)
        assert replay.balanced()
        assert len(replay.completed_keys()) == SWEEP_GRID
        # Zero re-simulation: nothing journaled complete before the kill
        # was dispatched again after the resume boundary.
        resumed_dispatches = {
            record["key"]
            for record in records[records_before:]
            if record.get("event") == "dispatched"
        }
        assert not completed_before & resumed_dispatches
        assert "journal   :" in out.getvalue()
        if interrupted:
            assert replay.attempts  # the grid genuinely ran in two halves

    def test_second_resume_is_idempotent(self, tmp_path):
        cache_dir = tmp_path / "cache"
        journal = tmp_path / "sweep.jnl"
        artifact = tmp_path / "sweep.json"
        first = io.StringIO()
        assert cli_main(
            SWEEP_ARGS + [
                "--cache-dir", str(cache_dir), "--journal", str(journal),
                "--out", str(artifact),
            ],
            out=first,
        ) == 0
        document = _strip_volatile(json.loads(artifact.read_text()))
        records_before = len(read_journal(journal))
        again = io.StringIO()
        assert cli_main(
            SWEEP_ARGS + [
                "--cache-dir", str(cache_dir), "--resume", str(journal),
                "--out", str(artifact),
            ],
            out=again,
        ) == 0
        assert _strip_volatile(json.loads(artifact.read_text())) == document
        records = read_journal(journal)
        # A full replay appends exactly one resumed 'start' header.
        assert len(records) == records_before + 1
        assert f"{SWEEP_GRID} replayed" in again.getvalue()
