"""Property-based differential testing: randomly generated programs must
produce identical architectural state under the interpreter and under
every compilation strategy on the simulator.

This is the reproduction's strongest correctness property: partitioning,
scheduling, communication insertion, speculation, and the cycle-level
machine all have to agree with sequential semantics for arbitrary
dependence patterns.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.arch import mesh, single_core
from repro.compiler import compile_program
from repro.isa import ProgramBuilder, run_program
from repro.sim import VoltronMachine

BINOPS = ("add", "sub", "mul", "xor", "or_", "and_")


@st.composite
def loop_programs(draw):
    """A program with one or two loops of random dependence structure."""
    n = draw(st.integers(min_value=8, max_value=24))
    n_loops = draw(st.integers(min_value=1, max_value=2))
    specs = []
    for _ in range(n_loops):
        specs.append({
            "ops": draw(
                st.lists(
                    st.tuples(
                        st.sampled_from(BINOPS),
                        st.integers(min_value=0, max_value=3),
                        st.integers(min_value=1, max_value=9),
                    ),
                    min_size=1,
                    max_size=6,
                )
            ),
            "reduce": draw(st.booleans()),
            "writes_random": draw(st.booleans()),
        })
    init = draw(
        st.lists(
            st.integers(min_value=1, max_value=60), min_size=n, max_size=n
        )
    )
    return n, specs, init


def build_program(n, specs, init):
    pb = ProgramBuilder("prop")
    a = pb.alloc("a", n, init=init)
    idx = pb.alloc("idx", n, init=[(7 * i + 3) % n for i in range(n)])
    outs = []
    fb = pb.function("main")
    fb.block("entry")
    for loop_id, spec in enumerate(specs):
        out = pb.alloc(f"out{loop_id}", n + 1)
        outs.append(f"out{loop_id}")
        acc = fb.mov(0)
        with fb.counted_loop(f"L{loop_id}", 0, n) as i:
            v = fb.load(a.base, i)
            regs = [v, fb.load(idx.base, i), i, fb.mov(5)]
            t = v
            for op_name, src_index, const in spec["ops"]:
                fn = getattr(fb, op_name)
                t = fn(t, regs[src_index]) if src_index < 3 else fn(t, const)
            if spec["writes_random"]:
                k = fb.and_(regs[1], n - 1)
                fb.store(out.base, k, t)
            else:
                fb.store(out.base, i, t)
            if spec["reduce"]:
                fb.add(acc, t, dest=acc)
        fb.store(out.base, n, acc)
    fb.halt()
    return pb.finish(), outs


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(loop_programs())
def test_all_strategies_match_interpreter(data):
    n, specs, init = data
    program, outs = build_program(n, specs, init)
    reference = run_program(program)
    expected = {name: reference.array_values(program, name) for name in outs}
    for n_cores, strategy in [
        (2, "ilp"), (2, "tlp"), (2, "llp"), (2, "hybrid"),
        (4, "hybrid"),
    ]:
        compiled = compile_program(program, n_cores, strategy)
        config = mesh(n_cores)
        machine = VoltronMachine(compiled, config, max_cycles=2_000_000)
        machine.run()
        for name, values in expected.items():
            assert machine.array_values(name) == values, (
                f"{n_cores}-core {strategy} diverged on {name}"
            )


@settings(max_examples=20, deadline=None)
@given(
    start=st.integers(min_value=0, max_value=5),
    bound=st.integers(min_value=8, max_value=40),
    step=st.integers(min_value=1, max_value=4),
)
def test_doall_chunking_covers_exactly_the_iteration_space(start, bound, step):
    """Chunked speculative execution touches exactly the iterations the
    serial loop touches, for arbitrary (start, bound, step)."""
    pb = ProgramBuilder("chunks")
    size = bound + step + 1
    out = pb.alloc("out", size)
    fb = pb.function("main")
    fb.block("entry")
    with fb.counted_loop("L", start, bound, step=step) as i:
        fb.store(out.base, i, fb.add(i, 100))
    fb.halt()
    program = pb.finish()
    reference = run_program(program)
    compiled = compile_program(program, 4, "llp")
    machine = VoltronMachine(compiled, mesh(4), max_cycles=2_000_000)
    machine.run()
    assert machine.array_values("out") == reference.array_values(program, "out")


@settings(max_examples=15, deadline=None)
@given(
    trips=st.integers(min_value=8, max_value=48),
    chase=st.integers(min_value=1, max_value=3),
    work=st.integers(min_value=1, max_value=6),
)
def test_dswp_pipeline_correct_for_random_shapes(trips, chase, work):
    from repro.workloads.kernels import KernelContext, dswp_kernel

    pb = ProgramBuilder("pipe")
    fb = pb.function("main")
    fb.block("entry")
    ctx = KernelContext(pb=pb, fb=fb, seed=trips * 31 + chase)
    out = dswp_kernel(ctx, trips=trips, work_depth=work, chase_depth=chase)
    fb.halt()
    program = pb.finish()
    reference = run_program(program)
    compiled = compile_program(program, 4, "tlp")
    machine = VoltronMachine(compiled, mesh(4), max_cycles=2_000_000)
    machine.run()
    assert machine.array_values(out) == reference.array_values(program, out)
