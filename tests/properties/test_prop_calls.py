"""Property tests over random call structures: the call/return machinery
(argument marshalling on every core, return-value distribution, barrier
synchronization in decoupled mode) must preserve sequential semantics."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.arch import mesh
from repro.compiler import compile_program
from repro.isa import ProgramBuilder, run_program
from repro.sim import VoltronMachine

OPS = ("add", "mul", "xor", "sub")


@st.composite
def call_programs(draw):
    n_helpers = draw(st.integers(min_value=1, max_value=3))
    helper_bodies = [
        draw(
            st.lists(
                st.tuples(
                    st.sampled_from(OPS), st.integers(min_value=1, max_value=7)
                ),
                min_size=1,
                max_size=4,
            )
        )
        for _ in range(n_helpers)
    ]
    trips = draw(st.integers(min_value=4, max_value=12))
    call_sites = draw(
        st.lists(
            st.integers(min_value=0, max_value=n_helpers - 1),
            min_size=1,
            max_size=3,
        )
    )
    return helper_bodies, trips, call_sites


def build_program(helper_bodies, trips, call_sites):
    pb = ProgramBuilder("calls")
    a = pb.alloc("a", 16, init=[(3 * i + 1) % 17 for i in range(16)])
    out = pb.alloc("out", trips)
    for index, body in enumerate(helper_bodies):
        hb = pb.function(f"h{index}", n_params=1)
        hb.block(f"h{index}_entry")
        (x,) = hb.function.params
        t = x
        for op_name, const in body:
            t = getattr(hb, op_name)(t, const)
        hb.ret(hb.and_(t, 0xFFFF))
    fb = pb.function("main")
    fb.block("entry")
    with fb.counted_loop("L", 0, trips) as i:
        idx = fb.and_(i, 15)
        v = fb.load(a.base, idx)
        for helper_index in call_sites:
            v = fb.call(f"h{helper_index}", [v])
        fb.store(out.base, i, v)
    fb.halt()
    return pb.finish()


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(call_programs())
def test_random_call_structures_match_interpreter(data):
    helper_bodies, trips, call_sites = data
    program = build_program(helper_bodies, trips, call_sites)
    reference = run_program(program)
    expected = reference.array_values(program, "out")
    for n_cores, strategy in ((2, "ilp"), (2, "tlp"), (4, "hybrid")):
        compiled = compile_program(program, n_cores, strategy)
        machine = VoltronMachine(
            compiled, mesh(n_cores), max_cycles=2_000_000
        )
        machine.run()
        assert machine.array_values("out") == expected, (
            f"{n_cores}-core {strategy} diverged"
        )


@settings(max_examples=15, deadline=None)
@given(
    depth=st.integers(min_value=1, max_value=3),
    seed_value=st.integers(min_value=1, max_value=50),
)
def test_nested_calls_match_interpreter(depth, seed_value):
    pb = ProgramBuilder("nested")
    out = pb.alloc("out", 1)
    previous = None
    for level in range(depth):
        hb = pb.function(f"level{level}", n_params=1)
        hb.block(f"l{level}")
        (x,) = hb.function.params
        t = hb.add(hb.mul(x, 3), level)
        if previous is not None:
            t = hb.call(previous, [t])
        hb.ret(t)
        previous = f"level{level}"
    fb = pb.function("main")
    fb.block("entry")
    fb.store(out.base, 0, fb.call(previous, [seed_value]))
    fb.halt()
    program = pb.finish()
    expected = run_program(program).array_values(program, "out")
    compiled = compile_program(program, 2, "ilp")
    machine = VoltronMachine(compiled, mesh(2), max_cycles=1_000_000)
    machine.run()
    assert machine.array_values("out") == expected
