"""Property tests on the static schedulers: for random op graphs the
emitted slot assignments must honour every dependence and alignment
constraint the machine relies on."""

from hypothesis import given, settings, strategies as st

from repro.compiler.schedule import (
    fresh_align_id,
    schedule_coupled,
    schedule_decoupled,
)
from repro.isa import ProgramBuilder
from repro.isa.latencies import scheduling_latency
from repro.isa.operations import Imm, Opcode, Reg, RegFile, make_op

R = lambda i: Reg(RegFile.GPR, i)

ARITH = (Opcode.ADD, Opcode.MUL, Opcode.XOR, Opcode.SUB)


def _program():
    pb = ProgramBuilder("t")
    fb = pb.function("main")
    fb.block("entry")
    fb.halt()
    return pb.finish()


@st.composite
def op_lists(draw, n_cores=2):
    """Random dataflow over a small register set, random core assignment."""
    count = draw(st.integers(min_value=1, max_value=18))
    ops = []
    defined = []
    for index in range(count):
        opcode = draw(st.sampled_from(ARITH))
        if defined and draw(st.booleans()):
            src = draw(st.sampled_from(defined))
        else:
            src = Imm(draw(st.integers(0, 9)))
        dest = R(index)  # SSA-style fresh destinations
        op = make_op(opcode, [dest], [src, Imm(1)])
        op.core = draw(st.integers(0, n_cores - 1))
        ops.append(op)
        defined.append(dest)
    return ops


def _check_flow_latencies(ops, slot_of):
    """Every same-core consumer issues >= producer slot + latency."""
    last_def = {}
    for op in ops:
        for src in op.srcs:
            if isinstance(src, Reg) and src in last_def:
                producer = last_def[src]
                if producer.core == op.core:
                    required = slot_of[producer.uid] + scheduling_latency(
                        producer.opcode
                    )
                    assert slot_of[op.uid] >= required
        for dest in op.dests:
            last_def[dest] = op


def _slots_map(slots):
    mapping = {}
    for core_slots in slots:
        for index, op in enumerate(core_slots):
            if op is not None:
                mapping[op.uid] = index
    return mapping


class TestCoupledScheduler:
    @settings(max_examples=60, deadline=None)
    @given(op_lists())
    def test_dependences_and_single_issue(self, ops):
        program = _program()
        slots = schedule_coupled(program, ops, 2)
        # Equal lengths (lock-step NOP padding).
        assert len(slots[0]) == len(slots[1])
        # Single issue: one op per core per cycle, every op placed once.
        placed = [op for core_slots in slots for op in core_slots if op]
        assert len(placed) == len(ops)
        assert len({id(op) for op in placed}) == len(ops)
        _check_flow_latencies(ops, _slots_map(slots))

    @settings(max_examples=40, deadline=None)
    @given(op_lists(), st.data())
    def test_align_groups_always_co_issue(self, ops, data):
        if len(ops) < 2:
            return
        # Pin two ops on different cores into an align group.
        on0 = [op for op in ops if op.core == 0]
        on1 = [op for op in ops if op.core == 1]
        if not on0 or not on1:
            return
        a = data.draw(st.sampled_from(on0))
        b = data.draw(st.sampled_from(on1))
        align = fresh_align_id()
        a.attrs["align"] = align
        b.attrs["align"] = align
        slots = schedule_coupled(_program(), ops, 2)
        mapping = _slots_map(slots)
        assert mapping[a.uid] == mapping[b.uid]


class TestDecoupledScheduler:
    @settings(max_examples=60, deadline=None)
    @given(op_lists(n_cores=3))
    def test_per_core_order_preserved(self, ops):
        """The queue protocol depends on the decoupled scheduler never
        reordering a core's operations."""
        slots = schedule_decoupled(_program(), ops, 3)
        for core in range(3):
            expected = [op for op in ops if op.core == core]
            got = [op for op in slots[core] if op is not None]
            assert got == expected

    @settings(max_examples=60, deadline=None)
    @given(op_lists(n_cores=2))
    def test_flow_latencies_respected(self, ops):
        slots = schedule_decoupled(_program(), ops, 2)
        _check_flow_latencies(ops, _slots_map(slots))
