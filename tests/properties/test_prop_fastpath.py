"""Differential lockdown for the stall fast-forwarding kernel.

The simulator's fast path (pre-decoded dispatch plus stall fast-forward,
see ``repro.sim.machine``) claims to be an *exact* acceleration: jumping
the clock over a proven stall window must leave every statistic -- cycle
counts, per-category stalls, mode residency, block attribution, network
tallies -- bit-identical to stepping each cycle.  This suite enforces
that claim over the entire workload suite at every (cores, strategy)
cell the figures use, comparing full ``MachineStats.to_dict()`` payloads
and the final memory image between a fast-forwarding run and a
single-stepping run of the same compiled program.
"""

from __future__ import annotations

import pytest

from repro.arch import mesh, single_core
from repro.compiler import VoltronCompiler
from repro.sim import VoltronMachine
from repro.workloads.suite import BENCHMARKS, build

#: The figure matrix: serial baseline plus every parallel strategy at the
#: paper's two machine sizes.
CELLS = [(1, "baseline")] + [
    (n_cores, strategy)
    for n_cores in (2, 4)
    for strategy in ("ilp", "tlp", "llp")
]


@pytest.mark.parametrize("name", BENCHMARKS)
def test_fast_forward_is_bit_identical(name):
    bench = build(name)
    compiler = VoltronCompiler(bench.program)  # one profile for all cells
    for n_cores, strategy in CELLS:
        config = single_core() if n_cores == 1 else mesh(n_cores)
        compiled = compiler.compile(strategy, config)
        fast_machine = VoltronMachine(compiled, config, fast_forward=True)
        fast = fast_machine.run().to_dict()
        slow_machine = VoltronMachine(compiled, config, fast_forward=False)
        slow = slow_machine.run().to_dict()
        assert fast == slow, (
            f"{name} [{n_cores}-core {strategy}]: fast-forwarded stats "
            "diverged from single-stepped stats"
        )
        assert fast_machine.final_memory() == slow_machine.final_memory(), (
            f"{name} [{n_cores}-core {strategy}]: fast-forwarded memory "
            "image diverged from single-stepped memory image"
        )
