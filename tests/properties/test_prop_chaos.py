"""Chaos-differential suite: fault injection perturbs timing, never results.

For every benchmark and every (cores, strategy) cell, a run under a
randomized fault plan -- extra cache/memory latency, delayed queue-mode
deliveries, transient stall-bus assertions, spurious TM conflicts -- must
leave *final memory bit-identical* to the fault-free golden run, and the
commit count must still equal the chunk count (injected conflicts raise
``aborts``; every chunk still commits exactly once).

The destructive profile raises the stakes: payloads are corrupted in
flight, messages are dropped in the router, and cores black out
mid-chunk with their registers poisoned.  The same bit-identity bar
applies -- the recovery subsystem (CRC/retransmit, watchdog +
checkpoint rollback, graceful degradation) must repair every injection,
and its counters must account for every destructive channel fire.

The plan seeds derive from the ``CHAOS_SEED`` environment variable (CI
randomizes it and echoes the value, so any failure is replayable with
``CHAOS_SEED=<n> pytest tests/properties/test_prop_chaos.py``).
"""

import os

import pytest

from repro.arch import mesh, single_core
from repro.compiler import VoltronCompiler
from repro.sim import FaultConfig, FaultPlan, VoltronMachine
from repro.workloads.suite import BENCHMARKS, build

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "1"))

#: Same cell grid the fast-path differential suite locks down.
CELLS = [(1, "baseline")] + [
    (n, s) for n in (2, 4) for s in ("ilp", "tlp", "llp")
]

#: Sparse enough to finish quickly, dense enough that every channel fires
#: on every benchmark (verified by the injections() assertions below).
CHAOS_CONFIGS = [
    FaultConfig(seed=CHAOS_SEED, rate=0.002, tm_rate=0.5),
    FaultConfig(seed=CHAOS_SEED + 1, rate=0.005, tm_rate=0.25),
]

#: Destructive plans: corrupted payloads, dropped messages, blackouts.
#: The tiny retransmit budget on the second plan forces the reliable
#: fallback path; blackouts only fire on multi-core speculative cells.
DESTRUCTIVE_CONFIGS = [
    FaultConfig(
        seed=CHAOS_SEED + 2, profile="destructive",
        corrupt_rate=0.05, drop_rate=0.05, blackout_rate=0.0005,
    ),
    FaultConfig(
        seed=CHAOS_SEED + 3, profile="both", rate=0.002, tm_rate=0.25,
        corrupt_rate=0.1, drop_rate=0.1, blackout_rate=0.001,
        retransmit_budget=1, blackout_budget=1,
    ),
]


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_faults_never_change_architectural_state(name):
    bench = build(name)
    compiler = VoltronCompiler(bench.program)
    for n_cores, strategy in CELLS:
        config = single_core() if n_cores == 1 else mesh(n_cores)
        compiled = compiler.compile(strategy, config)
        golden = VoltronMachine(compiled, config)
        golden_stats = golden.run()
        golden_memory = golden.final_memory()
        for fault_config in CHAOS_CONFIGS:
            plan = FaultPlan(fault_config)
            machine = VoltronMachine(compiled, config, faults=plan)
            stats = machine.run()
            cell = f"{name} [{n_cores}-core {strategy}] seed={fault_config.seed}"
            assert plan.injections() > 0, f"{cell}: plan never fired"
            assert machine.final_memory() == golden_memory, (
                f"{cell}: final memory diverged from the fault-free run"
            )
            # Ordered commit under injection: aborted chunks re-execute
            # and commit, so the commit count never moves.
            assert stats.tx_commits == golden_stats.tx_commits, (
                f"{cell}: commit count changed under fault injection"
            )
            assert stats.tx_aborts >= golden_stats.tx_aborts, (
                f"{cell}: aborts cannot be fewer than the fault-free run"
            )


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_destructive_faults_are_fully_recovered(name):
    bench = build(name)
    compiler = VoltronCompiler(bench.program)
    for n_cores, strategy in CELLS:
        config = single_core() if n_cores == 1 else mesh(n_cores)
        compiled = compiler.compile(strategy, config)
        golden = VoltronMachine(compiled, config)
        golden_stats = golden.run()
        golden_memory = golden.final_memory()
        for fault_config in DESTRUCTIVE_CONFIGS:
            plan = FaultPlan(fault_config)
            machine = VoltronMachine(compiled, config, faults=plan)
            stats = machine.run()
            cell = f"{name} [{n_cores}-core {strategy}] seed={fault_config.seed}"
            assert machine.final_memory() == golden_memory, (
                f"{cell}: recovery failed to restore bit-identical memory"
            )
            assert stats.tx_commits == golden_stats.tx_commits, (
                f"{cell}: commit count changed under destructive faults"
            )
            # Every destructive channel fire is accounted for by exactly
            # one detection: corrupt -> CRC error, drop -> timer expiry,
            # blackout -> watchdog rollback.
            summary = plan.summary()
            counters = machine.recovery.counters
            assert counters["crc_errors"] == summary["corrupt"], cell
            assert counters["drops"] == summary["drop"], cell
            assert counters["blackouts"] == summary["blackout"], cell
            assert counters["retransmits"] == (
                summary["corrupt"] + summary["drop"]
            ), cell
            assert counters["watchdog_detections"] == counters["blackouts"], (
                cell
            )
            assert counters["chunk_rollbacks"] == counters["blackouts"], cell


def test_injected_tm_conflicts_raise_aborts_not_commits():
    """171.swim's DOALL regions commit real chunks; with tm_rate=1 every
    first commit attempt is aborted, yet commits still equal chunk count
    and memory is untouched (the livelock guard guarantees progress)."""
    bench = build("171.swim")
    config = mesh(4)
    compiled = VoltronCompiler(bench.program).compile("llp", config)
    golden = VoltronMachine(compiled, config)
    golden_stats = golden.run()
    assert golden_stats.tx_commits > 0  # the cell actually speculates

    plan = FaultPlan(FaultConfig(seed=CHAOS_SEED, rate=0.0, tm_rate=1.0))
    machine = VoltronMachine(compiled, config, faults=plan)
    stats = machine.run()
    assert machine.tm.spurious_aborts > 0
    assert stats.tx_aborts > golden_stats.tx_aborts
    assert stats.tx_commits == golden_stats.tx_commits
    assert machine.tm.livelock_escalations > 0  # the guard did fire
    assert machine.final_memory() == golden.final_memory()


def test_chaos_seed_env_var_controls_schedule():
    """The suite's seed knob genuinely changes the plans (CI randomizes
    it), while a fixed seed replays bit-identically."""
    a = FaultPlan(FaultConfig(seed=CHAOS_SEED, rate=0.01))
    b = FaultPlan(FaultConfig(seed=CHAOS_SEED, rate=0.01))
    c = FaultPlan(FaultConfig(seed=CHAOS_SEED + 977, rate=0.01))
    draws = lambda plan: [plan.mem_delay() for _ in range(2000)]  # noqa: E731
    assert draws(a) == draws(b)
    assert draws(a) != draws(c)
