"""Chaos-differential suite: fault injection perturbs timing, never results.

For every benchmark and every machine/strategy cell, a run under a
randomized fault plan -- extra cache/memory latency, delayed queue-mode
deliveries, transient stall-bus assertions, spurious TM conflicts -- must
leave *final memory bit-identical* to the fault-free golden run, and the
commit count must still equal the chunk count (injected conflicts raise
``aborts``; every chunk still commits exactly once).

The destructive profile raises the stakes: payloads are corrupted in
flight, messages are dropped in the router, and cores black out
mid-chunk with their registers poisoned.  The same bit-identity bar
applies -- the recovery subsystem (CRC/retransmit, watchdog +
checkpoint rollback, graceful degradation) must repair every injection,
and its counters must account for every destructive channel fire.

Cells are expressed as machine specs (``resolve_machine``/presets), so
the same contract runs against every machine shape: the paper's 1-4
core grid below, and the scaled 16-64-core meshes -- under both
coherence protocols and both receive-queue policies -- in the scale
matrix at the bottom.

The plan seeds derive from the ``CHAOS_SEED`` environment variable (CI
randomizes it and echoes the value, so any failure is replayable with
``CHAOS_SEED=<n> pytest tests/properties/test_prop_chaos.py``).
"""

import dataclasses
import os

import pytest

from repro.arch.config import resolve_machine
from repro.compiler import VoltronCompiler
from repro.sim import FaultConfig, FaultPlan, VoltronMachine
from repro.sim.caches import DirectoryCoherence
from repro.sim.recovery import REMAP_HOPS_PREFIX
from repro.workloads.suite import BENCHMARKS, build

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "1"))

#: Same cell grid the fast-path differential suite locks down, spelled
#: as machine specs (the presets resolve to the exact configs the old
#: hardcoded single_core()/mesh() cells built).
CELLS = [("single", "baseline")] + [
    (machine, s) for machine in ("two", "four") for s in ("ilp", "tlp", "llp")
]

#: Sparse enough to finish quickly, dense enough that every channel fires
#: on every benchmark (verified by the injections() assertions below).
CHAOS_CONFIGS = [
    FaultConfig(seed=CHAOS_SEED, rate=0.002, tm_rate=0.5),
    FaultConfig(seed=CHAOS_SEED + 1, rate=0.005, tm_rate=0.25),
]

#: Destructive plans: corrupted payloads, dropped messages, blackouts.
#: The tiny retransmit budget on the second plan forces the reliable
#: fallback path; blackouts only fire on multi-core speculative cells.
DESTRUCTIVE_CONFIGS = [
    FaultConfig(
        seed=CHAOS_SEED + 2, profile="destructive",
        corrupt_rate=0.05, drop_rate=0.05, blackout_rate=0.0005,
    ),
    FaultConfig(
        seed=CHAOS_SEED + 3, profile="both", rate=0.002, tm_rate=0.25,
        corrupt_rate=0.1, drop_rate=0.1, blackout_rate=0.001,
        retransmit_budget=1, blackout_budget=1,
    ),
]


def _cell_config(machine):
    return resolve_machine(machine)


def _assert_destructive_recovered(machine, golden, golden_stats, stats,
                                  plan, cell):
    """The full destructive-chaos contract for one cell: bit-identity,
    exact fire <-> detection matching, a clean directory, and zero
    flow-control credit leaks."""
    assert machine.final_memory() == golden.final_memory(), (
        f"{cell}: recovery failed to restore bit-identical memory"
    )
    assert stats.tx_commits == golden_stats.tx_commits, (
        f"{cell}: commit count changed under destructive faults"
    )
    # Every destructive channel fire is accounted for by exactly one
    # detection: corrupt -> CRC error, drop -> timer expiry, blackout ->
    # watchdog rollback.
    summary = plan.summary()
    counters = machine.recovery.counters
    assert counters["crc_errors"] == summary["corrupt"], cell
    assert counters["drops"] == summary["drop"], cell
    assert counters["blackouts"] == summary["blackout"], cell
    assert counters["retransmits"] == (
        summary["corrupt"] + summary["drop"]
    ), cell
    assert counters["watchdog_detections"] == counters["blackouts"], cell
    assert counters["chunk_rollbacks"] == counters["blackouts"], cell
    # The remap-distance histogram partitions the remap count.
    histogram_total = sum(
        value for key, value in counters.items()
        if key.startswith(REMAP_HOPS_PREFIX)
    )
    assert histogram_total == counters["chunks_remapped"], cell
    if isinstance(machine.bus, DirectoryCoherence):
        # Every watchdog recovery scrubbed the dead core out of the
        # sharer vectors, and the directory still mirrors the L1s.
        assert counters["directory_scrubs"] == (
            counters["watchdog_detections"]
        ), cell
        machine.bus.check_directory()
    else:
        assert counters["directory_scrubs"] == 0, cell
    # Reliable delivery repaired every drop: nothing in flight, nothing
    # unread, and every flow-control credit (including vlink pool and
    # reserved slots) returned.
    assert machine.network.quiescent(), f"{cell}: network not quiescent"
    assert machine.network.credits_balanced(), (
        f"{cell}: flow-control credits leaked"
    )


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_faults_never_change_architectural_state(name):
    bench = build(name)
    compiler = VoltronCompiler(bench.program)
    for machine_spec, strategy in CELLS:
        config = _cell_config(machine_spec)
        compiled = compiler.compile(strategy, config)
        golden = VoltronMachine(compiled, config)
        golden_stats = golden.run()
        golden_memory = golden.final_memory()
        for fault_config in CHAOS_CONFIGS:
            plan = FaultPlan(fault_config)
            machine = VoltronMachine(compiled, config, faults=plan)
            stats = machine.run()
            cell = f"{name} [{machine_spec} {strategy}] seed={fault_config.seed}"
            assert plan.injections() > 0, f"{cell}: plan never fired"
            assert machine.final_memory() == golden_memory, (
                f"{cell}: final memory diverged from the fault-free run"
            )
            # Ordered commit under injection: aborted chunks re-execute
            # and commit, so the commit count never moves.
            assert stats.tx_commits == golden_stats.tx_commits, (
                f"{cell}: commit count changed under fault injection"
            )
            assert stats.tx_aborts >= golden_stats.tx_aborts, (
                f"{cell}: aborts cannot be fewer than the fault-free run"
            )


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_destructive_faults_are_fully_recovered(name):
    bench = build(name)
    compiler = VoltronCompiler(bench.program)
    for machine_spec, strategy in CELLS:
        config = _cell_config(machine_spec)
        compiled = compiler.compile(strategy, config)
        golden = VoltronMachine(compiled, config)
        golden_stats = golden.run()
        for fault_config in DESTRUCTIVE_CONFIGS:
            plan = FaultPlan(fault_config)
            machine = VoltronMachine(compiled, config, faults=plan)
            stats = machine.run()
            cell = f"{name} [{machine_spec} {strategy}] seed={fault_config.seed}"
            _assert_destructive_recovered(
                machine, golden, golden_stats, stats, plan, cell
            )


# -- the scale matrix: 16-64 cores x coherence x queue policy -------------------

#: Every PR 8 machine shape: mesh16/32/64 x {snoop, directory} x
#: {per-pair, vlink}.  The benchmarks split the load: 171.swim/llp
#: carries speculative DOALL chunks (blackouts, watchdog recovery,
#: directory scrubs, remaps on holey meshes), epic/tlp is queue-heavy
#: (the link layer and the vlink pool under sustained pressure).
SCALE_MACHINES = [
    (f"mesh{size}-{coherence}", policy)
    for size in (16, 32, 64)
    for coherence in ("snoop", "directory")
    for policy in ("pair", "vlink")
]

SCALE_BENCHES = (("171.swim", "llp"), ("epic", "tlp"))


def _scale_config(preset_name, policy):
    config = resolve_machine(preset_name)
    if policy != config.network.queue_policy:
        config = dataclasses.replace(
            config,
            network=dataclasses.replace(config.network, queue_policy=policy),
        )
    return config


@pytest.mark.parametrize("preset_name,policy", SCALE_MACHINES)
def test_destructive_chaos_at_scale(preset_name, policy):
    config = _scale_config(preset_name, policy)
    fault_config = dataclasses.replace(
        DESTRUCTIVE_CONFIGS[0], seed=CHAOS_SEED + 4
    )
    speculated = False
    for name, strategy in SCALE_BENCHES:
        bench = build(name)
        compiled = VoltronCompiler(bench.program).compile(strategy, config)
        golden = VoltronMachine(compiled, config)
        golden_stats = golden.run()
        plan = FaultPlan(fault_config)
        machine = VoltronMachine(compiled, config, faults=plan)
        stats = machine.run()
        cell = f"{name} [{preset_name}/{policy} {strategy}]"
        assert plan.summary()["corrupt"] + plan.summary()["drop"] > 0, (
            f"{cell}: the link-layer channels never fired"
        )
        _assert_destructive_recovered(
            machine, golden, golden_stats, stats, plan, cell
        )
        speculated = speculated or golden_stats.tx_commits > 0
    assert speculated, f"{preset_name}: no scale cell ever speculated"


def test_both_profile_composes_with_scale_channels():
    """profile=both on a mesh32 directory/vlink machine: the new
    directory-latency and vlink pool-contention channels fire alongside
    the destructive ones, and the differential still holds."""
    config = _scale_config("mesh32-directory", "vlink")
    bench = build("171.swim")
    compiled = VoltronCompiler(bench.program).compile("llp", config)
    golden = VoltronMachine(compiled, config)
    golden_stats = golden.run()
    plan = FaultPlan(FaultConfig(
        seed=CHAOS_SEED + 5, profile="both", rate=0.02, tm_rate=0.25,
        corrupt_rate=0.05, drop_rate=0.05, blackout_rate=0.0005,
    ))
    machine = VoltronMachine(compiled, config, faults=plan)
    stats = machine.run()
    summary = plan.summary()
    assert summary["directory"] > 0, "directory-latency channel never fired"
    assert summary["vlink"] > 0, "vlink pool-contention channel never fired"
    _assert_destructive_recovered(
        machine, golden, golden_stats, stats, plan,
        "171.swim [mesh32-directory/vlink llp both]",
    )


def test_injected_tm_conflicts_raise_aborts_not_commits():
    """171.swim's DOALL regions commit real chunks; with tm_rate=1 every
    first commit attempt is aborted, yet commits still equal chunk count
    and memory is untouched (the livelock guard guarantees progress)."""
    bench = build("171.swim")
    config = resolve_machine("four")
    compiled = VoltronCompiler(bench.program).compile("llp", config)
    golden = VoltronMachine(compiled, config)
    golden_stats = golden.run()
    assert golden_stats.tx_commits > 0  # the cell actually speculates

    plan = FaultPlan(FaultConfig(seed=CHAOS_SEED, rate=0.0, tm_rate=1.0))
    machine = VoltronMachine(compiled, config, faults=plan)
    stats = machine.run()
    assert machine.tm.spurious_aborts > 0
    assert stats.tx_aborts > golden_stats.tx_aborts
    assert stats.tx_commits == golden_stats.tx_commits
    assert machine.tm.livelock_escalations > 0  # the guard did fire
    assert machine.final_memory() == golden.final_memory()


def test_chaos_seed_env_var_controls_schedule():
    """The suite's seed knob genuinely changes the plans (CI randomizes
    it), while a fixed seed replays bit-identically."""
    a = FaultPlan(FaultConfig(seed=CHAOS_SEED, rate=0.01))
    b = FaultPlan(FaultConfig(seed=CHAOS_SEED, rate=0.01))
    c = FaultPlan(FaultConfig(seed=CHAOS_SEED + 977, rate=0.01))
    draws = lambda plan: [plan.mem_delay() for _ in range(2000)]  # noqa: E731
    assert draws(a) == draws(b)
    assert draws(a) != draws(c)
