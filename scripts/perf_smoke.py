"""Performance smoke check for CI.

Two wall-clock guards, both measured as a min-of-N to shrug off scheduler
noise, compared against the committed numbers in
``benchmarks/perf_baseline.json``:

* **quickstart** -- ``examples/quickstart.py`` end to end.  Fails when it
  runs more than ``QUICKSTART_TOLERANCE``x slower than its committed
  baseline: that is the canary for a pathological slowdown in the
  compile/simulate path.
* **driver sequence** -- the Figure 10 (2-core) then Figure 11 (4-core)
  drivers over a six-benchmark subset, two runner instances sharing one
  result-cache directory (so the second run exercises the baseline-cell
  and reference-output cache hits exactly like a real figure session).
  Fails when the sequence is not at least ``DRIVER_MIN_SPEEDUP``x faster
  than the recorded pre-fast-path (seed) wall-clock, scaled by the
  quickstart ratio to normalize away machine-speed differences between
  the box that recorded the baseline and the box running the check.

Both guards run with fault injection off, so they double as the proof
that the destructive-fault recovery hooks (link-layer CRC checks, the
blackout watchdog, degradation gating) are free when dormant: a
fault-free machine never constructs a RecoveryManager -- asserted
outright before timing starts -- and every hook is a single ``is None``
check on the hot path.

Regenerate the baselines on a quiet machine with::

    PYTHONPATH=src python scripts/perf_smoke.py --update
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
BASELINE_PATH = REPO / "benchmarks" / "perf_baseline.json"

sys.path.insert(0, str(REPO / "src"))

from repro import api  # noqa: E402

#: Mixed-mode subset: coupled-heavy, decoupled-heavy, and DOALL benchmarks.
SUBSET = ["gsmdecode", "179.art", "171.swim", "epic", "rawcaudio",
          "g721decode"]

#: Quickstart may drift this much before the job fails.
QUICKSTART_TOLERANCE = 2.0

#: The driver sequence must stay at least this much faster than the seed.
DRIVER_MIN_SPEEDUP = 3.0

#: min-of-N repetitions per measurement.
REPEATS = 3


def _min_of(fn, repeats: int = REPEATS) -> float:
    return min(fn() for _ in range(repeats))


def time_quickstart() -> float:
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    script = REPO / "examples" / "quickstart.py"

    def once() -> float:
        start = time.perf_counter()
        subprocess.run(
            [sys.executable, str(script)],
            check=True,
            stdout=subprocess.DEVNULL,
            env=env,
        )
        return time.perf_counter() - start

    return _min_of(once)


def time_driver_sequence() -> float:
    def once() -> float:
        with tempfile.TemporaryDirectory() as cache_dir:
            start = time.perf_counter()
            first = api.session(SUBSET, cache_dir=cache_dir)
            first.fig10_11_speedups(2)
            second = api.session(SUBSET, cache_dir=cache_dir)
            second.fig10_11_speedups(4)
            return time.perf_counter() - start

    return _min_of(once)


def check_recovery_hooks_dormant() -> None:
    """A fault-free machine must not pay for the recovery subsystem: no
    RecoveryManager is constructed, the network neither stamps CRCs nor
    adjudicates deliveries, and the stall fast-forward stays armed.  The
    timed runs below then measure the dormant-hook fast path for real."""
    from repro.arch import mesh
    from repro.compiler import VoltronCompiler
    from repro.sim import VoltronMachine
    from repro.workloads.suite import build

    bench = build("rawcaudio")
    config = mesh(4)
    compiled = VoltronCompiler(bench.program).compile("hybrid", config)
    machine = VoltronMachine(compiled, config)
    assert machine.recovery is None, "RecoveryManager built without faults"
    assert machine.network.recovery is None, "network armed without faults"
    assert machine.fast_forward, "fast-forward lost without faults"
    print("recovery hooks  : dormant on the fault-free path (asserted)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite benchmarks/perf_baseline.json with fresh measurements",
    )
    parser.add_argument(
        "--trajectory-out",
        metavar="FILE",
        help="also write the measurements (plus verdict and git revision) "
        "as JSON -- CI uploads these per-run snapshots as the "
        "perf-trajectory artifact",
    )
    args = parser.parse_args(argv)

    check_recovery_hooks_dormant()
    quickstart = time_quickstart()
    driver = time_driver_sequence()
    print(f"quickstart      : {quickstart:.2f}s (min of {REPEATS})")
    print(f"driver sequence : {driver:.2f}s (min of {REPEATS}, "
          f"fig10 2-core + fig11 4-core, {len(SUBSET)} benchmarks)")

    if args.update:
        BASELINE_PATH.write_text(json.dumps({
            "quickstart_s": round(quickstart, 3),
            "driver_sequence_s": round(driver, 3),
            # Measured once at the commit that introduced the fast path, by
            # running the same sequence against the pre-fast-path tree.
            "seed_driver_sequence_s": json.loads(
                BASELINE_PATH.read_text()
            )["seed_driver_sequence_s"] if BASELINE_PATH.exists() else None,
        }, indent=2) + "\n")
        print(f"updated {BASELINE_PATH.relative_to(REPO)}")
        return 0

    baseline = json.loads(BASELINE_PATH.read_text())
    # This machine's speed relative to the one that recorded the baseline;
    # used to translate the recorded seed time onto this machine.
    machine_scale = quickstart / baseline["quickstart_s"]
    seed_here = baseline["seed_driver_sequence_s"] * machine_scale
    speedup = seed_here / driver
    print(f"machine scale   : {machine_scale:.2f}x vs baseline box")
    print(f"driver speedup  : {speedup:.2f}x vs seed "
          f"(recorded {baseline['seed_driver_sequence_s']:.2f}s, "
          f"scaled {seed_here:.2f}s)")

    failures = []
    if quickstart > baseline["quickstart_s"] * QUICKSTART_TOLERANCE:
        failures.append(
            f"quickstart regressed: {quickstart:.2f}s > "
            f"{QUICKSTART_TOLERANCE}x baseline "
            f"{baseline['quickstart_s']:.2f}s"
        )
    if speedup < DRIVER_MIN_SPEEDUP:
        failures.append(
            f"driver sequence no longer {DRIVER_MIN_SPEEDUP}x faster than "
            f"seed: {speedup:.2f}x"
        )
    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print("perf smoke OK")

    if args.trajectory_out:
        try:
            revision = subprocess.run(
                ["git", "rev-parse", "HEAD"],
                capture_output=True,
                text=True,
                cwd=REPO,
                check=True,
            ).stdout.strip()
        except (OSError, subprocess.CalledProcessError):
            revision = None
        Path(args.trajectory_out).write_text(json.dumps({
            "schema": 1,
            "revision": revision,
            "quickstart_s": round(quickstart, 3),
            "driver_sequence_s": round(driver, 3),
            "machine_scale": round(machine_scale, 3),
            "driver_speedup": round(speedup, 3),
            "quickstart_tolerance": QUICKSTART_TOLERANCE,
            "driver_min_speedup": DRIVER_MIN_SPEEDUP,
            "ok": not failures,
            "failures": failures,
        }, indent=2) + "\n")
        print(f"trajectory      : {args.trajectory_out}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
